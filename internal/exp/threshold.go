package exp

import (
	"fmt"
	"io"
	"text/tabwriter"

	"q3de/internal/lattice"
	"q3de/internal/sim"
)

// ThresholdConfig locates the surface-code threshold of a decoder and
// verifies the paper's observation (Sec. III-A, Fig. 3) that a single MBBE
// does not change the threshold value even though it degrades logical error
// rates: the crossing point of the d1/d2 curves is measured with and without
// an anomalous region.
type ThresholdConfig struct {
	Options
	D1, D2 int
	Rates  []float64
	DAno   int
	PAno   float64
}

// DefaultThreshold compares d=9 and d=15 across the crossing region.
func DefaultThreshold(o Options) ThresholdConfig {
	return ThresholdConfig{
		Options: o, D1: 9, D2: 15,
		Rates: []float64{2e-2, 3e-2, 4e-2, 6e-2, 8e-2, 1e-1},
		DAno:  4, PAno: 0.5,
	}
}

// ThresholdResult reports both crossings.
type ThresholdResult struct {
	Clean    float64
	CleanOK  bool
	WithMBBE float64
	MBBEOK   bool
	CurvesD1 []Point // clean pL(d1) per rate, for inspection
	CurvesD2 []Point
}

// RunThreshold sweeps the rates and interpolates the curve crossings.
func RunThreshold(cfg ThresholdConfig) ThresholdResult {
	maxShots, maxFail := cfg.Budget.shots()
	measure := func(d int, box *lattice.Box) []float64 {
		var out []float64
		for _, p := range cfg.Rates {
			r := cfg.runMemory(sim.MemoryConfig{
				D: d, P: p, Box: box, Pano: cfg.PAno,
				Decoder: cfg.Decoder, MaxShots: maxShots, MaxFailures: maxFail,
				Seed: cfg.Seed ^ uint64(d)<<20 ^ hashFloat(p), Workers: cfg.Workers,
			})
			out = append(out, r.PShot)
		}
		return out
	}
	c1 := measure(cfg.D1, nil)
	c2 := measure(cfg.D2, nil)
	b1 := lattice.New(cfg.D1, cfg.D1).CenteredBox(cfg.DAno)
	b2 := lattice.New(cfg.D2, cfg.D2).CenteredBox(cfg.DAno)
	m1 := measure(cfg.D1, &b1)
	m2 := measure(cfg.D2, &b2)

	var res ThresholdResult
	res.Clean, res.CleanOK = sim.ThresholdEstimate(cfg.Rates, c1, c2)
	res.WithMBBE, res.MBBEOK = sim.ThresholdEstimate(cfg.Rates, m1, m2)
	for i, p := range cfg.Rates {
		res.CurvesD1 = append(res.CurvesD1, Point{X: p, Y: c1[i]})
		res.CurvesD2 = append(res.CurvesD2, Point{X: p, Y: c2[i]})
	}
	return res
}

// RenderThreshold prints the crossings.
func RenderThreshold(w io.Writer, cfg ThresholdConfig, r ThresholdResult) {
	fmt.Fprintf(w, "# Threshold location (d=%d vs d=%d, %s decoder)\n", cfg.D1, cfg.D2, cfg.Decoder)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if r.CleanOK {
		fmt.Fprintf(tw, "clean threshold\t%.3g\n", r.Clean)
	} else {
		fmt.Fprintf(tw, "clean threshold\tnot bracketed by the rate grid\n")
	}
	if r.MBBEOK {
		fmt.Fprintf(tw, "threshold with MBBE\t%.3g\n", r.WithMBBE)
	} else {
		fmt.Fprintf(tw, "threshold with MBBE\tnot bracketed by the rate grid\n")
	}
	if r.CleanOK && r.MBBEOK {
		rel := r.WithMBBE/r.Clean - 1
		fmt.Fprintf(tw, "relative shift\t%+.1f%% (paper: threshold unchanged by a single MBBE)\n", 100*rel)
	}
	tw.Flush()
}
