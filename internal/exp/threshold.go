package exp

import (
	"fmt"
	"io"
	"text/tabwriter"

	"q3de/internal/lattice"
	"q3de/internal/sim"
	"q3de/internal/sweep"
)

// ThresholdConfig locates the surface-code threshold of a decoder and
// verifies the paper's observation (Sec. III-A, Fig. 3) that a single MBBE
// does not change the threshold value even though it degrades logical error
// rates: the crossing point of the d1/d2 curves is measured with and without
// an anomalous region.
type ThresholdConfig struct {
	Options
	D1, D2 int
	Rates  []float64
	DAno   int
	PAno   float64
}

// DefaultThreshold compares d=9 and d=15 across the crossing region.
func DefaultThreshold(o Options) ThresholdConfig {
	return ThresholdConfig{
		Options: o, D1: 9, D2: 15,
		Rates: []float64{2e-2, 3e-2, 4e-2, 6e-2, 8e-2, 1e-1},
		DAno:  4, PAno: 0.5,
	}
}

// ThresholdResult reports both crossings.
type ThresholdResult struct {
	Clean    float64
	CleanOK  bool
	WithMBBE float64
	MBBEOK   bool
	CurvesD1 []Point // clean pL(d1) per rate, for inspection
	CurvesD2 []Point
}

// sweep declares the grid — mbbe × {d1, d2} × rate — and the reducer that
// interpolates the curve crossings with and without the anomalous region.
func (cfg ThresholdConfig) sweep() *sweep.Sweep {
	maxShots, maxFail := cfg.Budget.shots()
	grid := sweep.Grid{Axes: []sweep.Axis{
		{Name: "mbbe", Values: sweep.Values(false, true)},
		{Name: "d", Values: sweep.Values(cfg.D1, cfg.D2)},
		{Name: "p", Values: sweep.Values(cfg.Rates...)},
	}}
	cfgOf := func(pt sweep.Point) sim.MemoryConfig {
		d, p := pt.Int("d"), pt.Float("p")
		var box *lattice.Box
		if pt.Bool("mbbe") {
			b := lattice.New(d, d).CenteredBox(cfg.DAno)
			box = &b
		}
		return sim.MemoryConfig{
			D: d, P: p, Box: box, Pano: cfg.PAno,
			Decoder: cfg.Decoder, MaxShots: maxShots, MaxFailures: maxFail,
			Seed: cfg.Seed ^ uint64(d)<<20 ^ hashFloat(p), Workers: cfg.Workers,
		}
	}
	reduce := func(rs []sweep.PointResult) (any, error) {
		// curves[mbbe][d] is pShot per rate, in rate order.
		curves := map[bool]map[int][]float64{
			false: {cfg.D1: nil, cfg.D2: nil},
			true:  {cfg.D1: nil, cfg.D2: nil},
		}
		for _, r := range rs {
			mbbe, d := r.Point.Bool("mbbe"), r.Point.Int("d")
			curves[mbbe][d] = append(curves[mbbe][d], memOf(r).PShot)
		}
		var res ThresholdResult
		res.Clean, res.CleanOK = sim.ThresholdEstimate(cfg.Rates, curves[false][cfg.D1], curves[false][cfg.D2])
		res.WithMBBE, res.MBBEOK = sim.ThresholdEstimate(cfg.Rates, curves[true][cfg.D1], curves[true][cfg.D2])
		for i, p := range cfg.Rates {
			res.CurvesD1 = append(res.CurvesD1, Point{X: p, Y: curves[false][cfg.D1][i]})
			res.CurvesD2 = append(res.CurvesD2, Point{X: p, Y: curves[false][cfg.D2][i]})
		}
		return res, nil
	}
	return cfg.memorySweep("threshold", grid, cfgOf, reduce)
}

// RunThreshold sweeps the rates and interpolates the curve crossings.
func RunThreshold(cfg ThresholdConfig) ThresholdResult {
	return cfg.runSweep(cfg.sweep()).Reduced.(ThresholdResult)
}

// RenderThreshold prints the crossings.
func RenderThreshold(w io.Writer, cfg ThresholdConfig, r ThresholdResult) {
	fmt.Fprintf(w, "# Threshold location (d=%d vs d=%d, %s decoder)\n", cfg.D1, cfg.D2, cfg.Decoder)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if r.CleanOK {
		fmt.Fprintf(tw, "clean threshold\t%.3g\n", r.Clean)
	} else {
		fmt.Fprintf(tw, "clean threshold\tnot bracketed by the rate grid\n")
	}
	if r.MBBEOK {
		fmt.Fprintf(tw, "threshold with MBBE\t%.3g\n", r.WithMBBE)
	} else {
		fmt.Fprintf(tw, "threshold with MBBE\tnot bracketed by the rate grid\n")
	}
	if r.CleanOK && r.MBBEOK {
		rel := r.WithMBBE/r.Clean - 1
		fmt.Fprintf(tw, "relative shift\t%+.1f%% (paper: threshold unchanged by a single MBBE)\n", 100*rel)
	}
	tw.Flush()
}
