package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"

	"q3de/internal/engine"
	"q3de/internal/sim"
)

// ExperimentNames lists every named experiment of the harness, in the order
// `q3de all` runs them.
func ExperimentNames() []string {
	return []string{"fig3", "fig3-adaptive", "fig7", "fig8", "fig9", "fig10",
		"table3", "table4", "headline", "ablation", "correlation", "threshold",
		"stream"}
}

// RunNamed runs one named experiment with the given options and writes its
// rendered output. This is the single dispatch point shared by the batch CLI
// (cmd/q3de) and the service's "figure" jobs (cmd/q3de-serve).
func RunNamed(w io.Writer, name string, opts Options) error {
	switch name {
	case "fig3":
		RenderFig3(w, RunFig3(DefaultFig3(opts)))
	case "fig3-adaptive":
		cfg := DefaultFig3Adaptive(opts)
		RenderFig3Adaptive(w, cfg, RunFig3Adaptive(cfg))
	case "fig7":
		RenderFig7(w, RunFig7(DefaultFig7(opts)))
	case "fig8":
		RenderFig8(w, RunFig8(DefaultFig8(opts)))
	case "fig9":
		RenderFig9(w, RunFig9(DefaultFig9(opts)))
	case "fig10":
		RenderFig10(w, RunFig10(DefaultFig10(opts)))
	case "table3":
		cfg := DefaultTable3()
		RenderTable3(w, cfg, runTable3(opts, cfg))
	case "table4":
		RenderTable4(w, runTable4(opts))
	case "headline":
		cfg := DefaultHeadline(opts)
		RenderHeadline(w, cfg, RunHeadline(cfg))
	case "ablation":
		cfg := DefaultAblation(opts)
		RenderAblation(w, cfg, RunAblation(cfg))
	case "correlation":
		cfg := DefaultCorrelation(opts)
		RenderCorrelation(w, cfg, RunCorrelation(cfg))
	case "threshold":
		cfg := DefaultThreshold(opts)
		RenderThreshold(w, cfg, RunThreshold(cfg))
	case "stream":
		cfg := DefaultStreamAblation(opts)
		RenderStreamAblation(w, cfg, RunStreamAblation(cfg))
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}

// ParseBudget maps the CLI/API budget names to Budget values.
func ParseBudget(s string) (Budget, error) {
	switch s {
	case "", "quick":
		return BudgetQuick, nil
	case "standard":
		return BudgetStandard, nil
	case "full":
		return BudgetFull, nil
	default:
		return 0, fmt.Errorf("unknown budget %q", s)
	}
}

// FigureParams is the params block of a "figure" job: one named experiment
// of the harness, run at the requested budget.
type FigureParams struct {
	Name    string `json:"name"`
	Budget  string `json:"budget,omitempty"`  // quick (default), standard, full
	Seed    uint64 `json:"seed,omitempty"`    // 0 means the harness default
	Decoder string `json:"decoder,omitempty"` // greedy (default), mwpm, union-find
}

// FigureResult is the rendered text output of a figure job, exactly what the
// CLI would print for the same options.
type FigureResult struct {
	Name   string `json:"name"`
	Budget string `json:"budget"`
	Text   string `json:"text"`
}

// RegisterJobs installs the experiment-harness job kinds on an engine. The
// serve front-end calls this so paper figures can be scheduled next to raw
// memory jobs, sharing the same shard pool and workspace cache.
func RegisterJobs(e *engine.Engine) {
	e.RegisterKind("figure", runFigureJob)
}

func runFigureJob(ctx context.Context, e *engine.Engine, params json.RawMessage, _ *engine.Job) (any, error) {
	var p FigureParams
	if len(params) > 0 {
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("figure job: %w", err)
		}
	}
	opts := DefaultOptions()
	opts.Engine = e
	opts.Context = ctx
	budget, err := ParseBudget(p.Budget)
	if err != nil {
		return nil, err
	}
	opts.Budget = budget
	if p.Seed != 0 {
		opts.Seed = p.Seed
	}
	if p.Decoder != "" {
		kind, err := sim.ParseDecoderKind(p.Decoder)
		if err != nil {
			return nil, err
		}
		opts.Decoder = kind
	}
	// Run the experiment on its own goroutine so cancellation is responsive
	// even inside a single long grid point (every experiment honors ctx
	// between sweep points, but a fig7 calibration or fig10 scheduler run is
	// one uninterruptible point): the job reports cancelled immediately and
	// the abandoned point drains in the background.
	var buf bytes.Buffer
	done := make(chan error, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if err, ok := r.(error); ok {
					done <- err
					return
				}
				done <- fmt.Errorf("figure job panicked: %v", r)
			}
		}()
		done <- RunNamed(&buf, p.Name, opts)
	}()
	select {
	case err := <-done:
		if err != nil {
			return nil, err
		}
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return FigureResult{Name: p.Name, Budget: budget.String(), Text: buf.String()}, nil
}
