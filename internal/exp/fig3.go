package exp

import (
	"fmt"
	"io"

	"q3de/internal/lattice"
	"q3de/internal/sim"
	"q3de/internal/sweep"
)

// Fig3Config parameterises experiment E1 (paper Fig. 3): logical error rates
// with and without an MBBE as a function of the physical error rate.
type Fig3Config struct {
	Options
	Distances []int     // paper: 9, 15, 21
	Rates     []float64 // paper: 4e-3 .. 4e-2
	DAno      int       // paper: 4
	PAno      float64   // paper: 0.5
}

// DefaultFig3 returns the paper's configuration.
func DefaultFig3(o Options) Fig3Config {
	return Fig3Config{
		Options:   o,
		Distances: []int{9, 15, 21},
		Rates:     []float64{4e-3, 6e-3, 1e-2, 2e-2, 3e-2, 4e-2},
		DAno:      4,
		PAno:      0.5,
	}
}

// sweep declares the figure's grid — mbbe × distance × rate — with the memory
// configuration each point resolves to and the reducer grouping points into
// one series per (mbbe, distance) curve.
func (cfg Fig3Config) sweep() *sweep.Sweep {
	maxShots, maxFail := cfg.Budget.shots()
	grid := sweep.Grid{Axes: []sweep.Axis{
		{Name: "mbbe", Values: sweep.Values(false, true)},
		{Name: "d", Values: sweep.Values(cfg.Distances...)},
		{Name: "p", Values: sweep.Values(cfg.Rates...)},
	}}
	cfgOf := func(pt sweep.Point) sim.MemoryConfig {
		d, p := pt.Int("d"), pt.Float("p")
		var box *lattice.Box
		if pt.Bool("mbbe") {
			b := lattice.New(d, d).CenteredBox(cfg.DAno)
			box = &b
		}
		return sim.MemoryConfig{
			D: d, P: p, Box: box, Pano: cfg.PAno,
			Decoder: cfg.Decoder, Aware: false,
			MaxShots: maxShots, MaxFailures: maxFail,
			Seed: cfg.Seed ^ uint64(d)<<32 ^ hashFloat(p), Workers: cfg.Workers,
		}
	}
	reduce := func(rs []sweep.PointResult) (any, error) {
		var out []Series
		for _, r := range rs {
			suffix := "without MBBE"
			if r.Point.Bool("mbbe") {
				suffix = "with MBBE"
			}
			name := seriesName(r.Point.Int("d"), suffix)
			if len(out) == 0 || out[len(out)-1].Name != name {
				out = append(out, Series{Name: name})
			}
			m := memOf(r)
			s := &out[len(out)-1]
			s.Points = append(s.Points, Point{X: r.Point.Float("p"), Y: m.PL, Err: m.StdErr})
		}
		return out, nil
	}
	return cfg.memorySweep("fig3", grid, cfgOf, reduce)
}

// RunFig3 produces one series per (distance, with/without MBBE) pair.
func RunFig3(cfg Fig3Config) []Series {
	return cfg.runSweep(cfg.sweep()).Reduced.([]Series)
}

// RenderFig3 writes the series in the harness text format.
func RenderFig3(w io.Writer, series []Series) {
	renderSeries(w, "Fig 3: logical error rate vs physical error rate, with/without MBBE", series)
}

func seriesName(d int, suffix string) string {
	return fmt.Sprintf("d=%d %s", d, suffix)
}

func hashFloat(f float64) uint64 {
	u := uint64(f * 1e12)
	u ^= u >> 33
	u *= 0xff51afd7ed558ccd
	u ^= u >> 33
	return u
}
