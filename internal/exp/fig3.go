package exp

import (
	"fmt"
	"io"

	"q3de/internal/lattice"
	"q3de/internal/sim"
)

// Fig3Config parameterises experiment E1 (paper Fig. 3): logical error rates
// with and without an MBBE as a function of the physical error rate.
type Fig3Config struct {
	Options
	Distances []int     // paper: 9, 15, 21
	Rates     []float64 // paper: 4e-3 .. 4e-2
	DAno      int       // paper: 4
	PAno      float64   // paper: 0.5
}

// DefaultFig3 returns the paper's configuration.
func DefaultFig3(o Options) Fig3Config {
	return Fig3Config{
		Options:   o,
		Distances: []int{9, 15, 21},
		Rates:     []float64{4e-3, 6e-3, 1e-2, 2e-2, 3e-2, 4e-2},
		DAno:      4,
		PAno:      0.5,
	}
}

// RunFig3 produces one series per (distance, with/without MBBE) pair.
func RunFig3(cfg Fig3Config) []Series {
	maxShots, maxFail := cfg.Budget.shots()
	var out []Series
	for _, mbbe := range []bool{false, true} {
		for _, d := range cfg.Distances {
			name := "without MBBE"
			var box *lattice.Box
			if mbbe {
				name = "with MBBE"
				b := lattice.New(d, d).CenteredBox(cfg.DAno)
				box = &b
			}
			s := Series{Name: seriesName(d, name)}
			for _, p := range cfg.Rates {
				r := cfg.runMemory(sim.MemoryConfig{
					D: d, P: p, Box: box, Pano: cfg.PAno,
					Decoder: cfg.Decoder, Aware: false,
					MaxShots: maxShots, MaxFailures: maxFail,
					Seed: cfg.Seed ^ uint64(d)<<32 ^ hashFloat(p), Workers: cfg.Workers,
				})
				s.Points = append(s.Points, Point{X: p, Y: r.PL, Err: r.StdErr})
			}
			out = append(out, s)
		}
	}
	return out
}

// RenderFig3 writes the series in the harness text format.
func RenderFig3(w io.Writer, series []Series) {
	renderSeries(w, "Fig 3: logical error rate vs physical error rate, with/without MBBE", series)
}

func seriesName(d int, suffix string) string {
	return fmt.Sprintf("d=%d %s", d, suffix)
}

func hashFloat(f float64) uint64 {
	u := uint64(f * 1e12)
	u ^= u >> 33
	u *= 0xff51afd7ed558ccd
	u ^= u >> 33
	return u
}
