package exp

import (
	"fmt"
	"io"
	"math"
	"sort"

	"q3de/internal/lattice"
	"q3de/internal/sim"
)

// Fig8Config parameterises experiment E3 (paper Fig. 8): logical error rates
// with and without decoder rollback under an MBBE, and the effective
// code-distance reduction of Eq. (4).
type Fig8Config struct {
	Options
	RateDistances []int     // curves of the top panels (paper: 9, 15, 21)
	EffDistances  []int     // distances for the reduction panels (paper: 9..17)
	Rates         []float64 // physical error rates (paper: 4e-3 .. 4e-2)
	AnomalySizes  []int     // paper: 2 and 4
	PAno          float64   // paper: 0.5
}

// DefaultFig8 returns the paper's configuration.
func DefaultFig8(o Options) Fig8Config {
	cfg := Fig8Config{
		Options:       o,
		RateDistances: []int{9, 15, 21},
		EffDistances:  []int{9, 11, 13, 15, 17},
		Rates:         []float64{4e-3, 1e-2, 2e-2, 4e-2},
		AnomalySizes:  []int{2, 4},
		PAno:          0.5,
	}
	if o.Budget == BudgetQuick {
		cfg.RateDistances = []int{9, 15}
		cfg.EffDistances = []int{9, 11, 13}
		cfg.Rates = []float64{1e-2, 4e-2}
	}
	return cfg
}

// Fig8Result holds the four panels.
type Fig8Result struct {
	// Rates[dano] holds the logical error curves: MBBE free, without
	// rollback, with rollback, per distance.
	Rates map[int][]Series
	// Reduction[dano] holds the effective code-distance reduction curves
	// (Eq. 4) with and without rollback, per distance.
	Reduction map[int][]Series
}

// RunFig8 regenerates the figure.
func RunFig8(cfg Fig8Config) Fig8Result {
	maxShots, maxFail := cfg.Budget.shots()
	run := func(d int, p float64, box *lattice.Box, aware bool) sim.MemoryResult {
		return cfg.runMemory(sim.MemoryConfig{
			D: d, P: p, Box: box, Pano: cfg.PAno,
			Decoder: cfg.Decoder, Aware: aware,
			MaxShots: maxShots, MaxFailures: maxFail,
			Seed:    cfg.Seed ^ uint64(d)<<24 ^ hashFloat(p) ^ boolBit(aware)<<60 ^ boolBit(box != nil)<<61,
			Workers: cfg.Workers,
		})
	}

	res := Fig8Result{Rates: map[int][]Series{}, Reduction: map[int][]Series{}}
	for _, dano := range cfg.AnomalySizes {
		var rateSeries []Series
		for _, d := range cfg.RateDistances {
			box := lattice.New(d, d).CenteredBox(dano)
			free := Series{Name: seriesName(d, "MBBE free")}
			blind := Series{Name: seriesName(d, "without rollback")}
			aware := Series{Name: seriesName(d, "with rollback")}
			for _, p := range cfg.Rates {
				rf := run(d, p, nil, false)
				rb := run(d, p, &box, false)
				ra := run(d, p, &box, true)
				free.Points = append(free.Points, Point{X: p, Y: rf.PL, Err: rf.StdErr})
				blind.Points = append(blind.Points, Point{X: p, Y: rb.PL, Err: rb.StdErr})
				aware.Points = append(aware.Points, Point{X: p, Y: ra.PL, Err: ra.StdErr})
			}
			rateSeries = append(rateSeries, free, blind, aware)
		}
		res.Rates[dano] = rateSeries

		var redSeries []Series
		for _, d := range cfg.EffDistances {
			box := lattice.New(d, d).CenteredBox(dano)
			blind := Series{Name: seriesName(d, "without rollback")}
			aware := Series{Name: seriesName(d, "with rollback")}
			for _, p := range cfg.Rates {
				pl := run(d, p, nil, false)
				plm2 := run(d-2, p, nil, false)
				rb := run(d, p, &box, false)
				ra := run(d, p, &box, true)
				if red, err, ok := EffectiveReduction(pl.PL, plm2.PL, rb.PL, pl.StdErr, plm2.StdErr, rb.StdErr); ok {
					blind.Points = append(blind.Points, Point{X: p, Y: red, Err: err})
				}
				if red, err, ok := EffectiveReduction(pl.PL, plm2.PL, ra.PL, pl.StdErr, plm2.StdErr, ra.StdErr); ok {
					aware.Points = append(aware.Points, Point{X: p, Y: red, Err: err})
				}
			}
			redSeries = append(redSeries, blind, aware)
		}
		res.Reduction[dano] = redSeries
	}
	return res
}

// EffectiveReduction evaluates the paper's Eq. (4):
//
//	d − deff = ln(pLano/pL) / (0.5 * ln(pL(d−2)/pL(d)))
//
// propagating relative statistical errors; ok is false when the inputs are
// degenerate (zero rates) or, per the paper's plotting rule, the standard
// error of the reduction exceeds four.
func EffectiveReduction(pL, pLm2, pLano, ePL, ePLm2, ePLano float64) (reduction, stderr float64, ok bool) {
	if pL <= 0 || pLm2 <= 0 || pLano <= 0 || pLm2 <= pL {
		return 0, 0, false
	}
	den := 0.5 * math.Log(pLm2/pL)
	num := math.Log(pLano / pL)
	reduction = num / den
	// First-order error propagation on the logs.
	relAno := ePLano / pLano
	relL := ePL / pL
	relM2 := ePLm2 / pLm2
	eNum := math.Sqrt(relAno*relAno + relL*relL)
	eDen := 0.5 * math.Sqrt(relM2*relM2+relL*relL)
	stderr = math.Abs(reduction) * math.Sqrt(math.Pow(eNum/num, 2)+math.Pow(eDen/den, 2))
	if math.IsNaN(stderr) || stderr > 4 {
		return reduction, stderr, false
	}
	return reduction, stderr, true
}

// RenderFig8 writes all panels in ascending anomaly-size order.
func RenderFig8(w io.Writer, r Fig8Result) {
	for _, dano := range sortedKeys(r.Rates) {
		renderSeries(w, fmt.Sprintf("Fig 8 (top): logical error rates, anomaly size = %d", dano), r.Rates[dano])
	}
	for _, dano := range sortedKeys(r.Reduction) {
		renderSeries(w, fmt.Sprintf("Fig 8 (bottom): code distance reduction, anomaly size = %d", dano), r.Reduction[dano])
	}
}

func sortedKeys(m map[int][]Series) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
