package exp

import (
	"fmt"
	"io"
	"math"
	"slices"
	"sort"

	"q3de/internal/lattice"
	"q3de/internal/sim"
	"q3de/internal/sweep"
)

// Fig8Config parameterises experiment E3 (paper Fig. 8): logical error rates
// with and without decoder rollback under an MBBE, and the effective
// code-distance reduction of Eq. (4).
type Fig8Config struct {
	Options
	RateDistances []int     // curves of the top panels (paper: 9, 15, 21)
	EffDistances  []int     // distances for the reduction panels (paper: 9..17)
	Rates         []float64 // physical error rates (paper: 4e-3 .. 4e-2)
	AnomalySizes  []int     // paper: 2 and 4
	PAno          float64   // paper: 0.5
}

// DefaultFig8 returns the paper's configuration.
func DefaultFig8(o Options) Fig8Config {
	cfg := Fig8Config{
		Options:       o,
		RateDistances: []int{9, 15, 21},
		EffDistances:  []int{9, 11, 13, 15, 17},
		Rates:         []float64{4e-3, 1e-2, 2e-2, 4e-2},
		AnomalySizes:  []int{2, 4},
		PAno:          0.5,
	}
	if o.Budget == BudgetQuick {
		cfg.RateDistances = []int{9, 15}
		cfg.EffDistances = []int{9, 11, 13}
		cfg.Rates = []float64{1e-2, 4e-2}
	}
	return cfg
}

// Fig8Result holds the four panels.
type Fig8Result struct {
	// Rates[dano] holds the logical error curves: MBBE free, without
	// rollback, with rollback, per distance.
	Rates map[int][]Series
	// Reduction[dano] holds the effective code-distance reduction curves
	// (Eq. 4) with and without rollback, per distance.
	Reduction map[int][]Series
}

// Fig8 sweep variants: the MBBE-free reference (no box, dano-independent),
// and the boxed runs without/with the rollback-aware metric.
const (
	fig8Free  = "free"
	fig8Blind = "blind"
	fig8Aware = "aware"
)

// fig8Key addresses one completed point in the reducer. Free points are
// dano-agnostic and stored under dano = 0.
type fig8Key struct {
	dano, d int
	variant string
	p       float64
}

// sweep declares the figure's point set. The panels do not form a rectangle —
// the reduction panel needs MBBE-free references at d−2 that the rate panel
// never plots, and the free runs do not depend on the anomaly size — so the
// grid is the maximal cross product with a Keep filter trimming the cells no
// panel reads. Identical configurations reachable from several panels (the
// free run at a shared distance feeds both) resolve to one canonical point
// spec and therefore one execution via the engine's point cache.
func (cfg Fig8Config) sweep() *sweep.Sweep {
	maxShots, maxFail := cfg.Budget.shots()

	boxed := make([]int, 0, len(cfg.RateDistances)+len(cfg.EffDistances))
	boxed = append(boxed, cfg.RateDistances...)
	boxed = append(boxed, cfg.EffDistances...)
	all := slices.Clone(boxed)
	for _, d := range cfg.EffDistances {
		all = append(all, d-2)
	}
	slices.Sort(all)
	all = slices.Compact(all)

	grid := sweep.Grid{
		Axes: []sweep.Axis{
			{Name: "dano", Values: sweep.Values(cfg.AnomalySizes...)},
			{Name: "d", Values: sweep.Values(all...)},
			{Name: "variant", Values: []any{fig8Free, fig8Blind, fig8Aware}},
			{Name: "p", Values: sweep.Values(cfg.Rates...)},
		},
		Keep: func(pt sweep.Point) bool {
			d, variant := pt.Int("d"), pt.Str("variant")
			if variant == fig8Free {
				// One dano-independent free run per (d, p).
				return pt.Int("dano") == cfg.AnomalySizes[0]
			}
			return slices.Contains(boxed, d)
		},
	}

	cfgOf := func(pt sweep.Point) sim.MemoryConfig {
		d, p, variant := pt.Int("d"), pt.Float("p"), pt.Str("variant")
		var box *lattice.Box
		aware := false
		if variant != fig8Free {
			b := lattice.New(d, d).CenteredBox(pt.Int("dano"))
			box = &b
			aware = variant == fig8Aware
		}
		return sim.MemoryConfig{
			D: d, P: p, Box: box, Pano: cfg.PAno,
			Decoder: cfg.Decoder, Aware: aware,
			MaxShots: maxShots, MaxFailures: maxFail,
			Seed:    cfg.Seed ^ uint64(d)<<24 ^ hashFloat(p) ^ boolBit(aware)<<60 ^ boolBit(box != nil)<<61,
			Workers: cfg.Workers,
		}
	}

	reduce := func(rs []sweep.PointResult) (any, error) {
		byKey := make(map[fig8Key]sim.MemoryResult, len(rs))
		for _, r := range rs {
			k := fig8Key{dano: r.Point.Int("dano"), d: r.Point.Int("d"),
				variant: r.Point.Str("variant"), p: r.Point.Float("p")}
			if k.variant == fig8Free {
				k.dano = 0
			}
			byKey[k] = memOf(r)
		}
		free := func(d int, p float64) sim.MemoryResult {
			return byKey[fig8Key{d: d, variant: fig8Free, p: p}]
		}
		res := Fig8Result{Rates: map[int][]Series{}, Reduction: map[int][]Series{}}
		for _, dano := range cfg.AnomalySizes {
			var rateSeries []Series
			for _, d := range cfg.RateDistances {
				freeS := Series{Name: seriesName(d, "MBBE free")}
				blindS := Series{Name: seriesName(d, "without rollback")}
				awareS := Series{Name: seriesName(d, "with rollback")}
				for _, p := range cfg.Rates {
					rf := free(d, p)
					rb := byKey[fig8Key{dano: dano, d: d, variant: fig8Blind, p: p}]
					ra := byKey[fig8Key{dano: dano, d: d, variant: fig8Aware, p: p}]
					freeS.Points = append(freeS.Points, Point{X: p, Y: rf.PL, Err: rf.StdErr})
					blindS.Points = append(blindS.Points, Point{X: p, Y: rb.PL, Err: rb.StdErr})
					awareS.Points = append(awareS.Points, Point{X: p, Y: ra.PL, Err: ra.StdErr})
				}
				rateSeries = append(rateSeries, freeS, blindS, awareS)
			}
			res.Rates[dano] = rateSeries

			var redSeries []Series
			for _, d := range cfg.EffDistances {
				blindS := Series{Name: seriesName(d, "without rollback")}
				awareS := Series{Name: seriesName(d, "with rollback")}
				for _, p := range cfg.Rates {
					pl := free(d, p)
					plm2 := free(d-2, p)
					rb := byKey[fig8Key{dano: dano, d: d, variant: fig8Blind, p: p}]
					ra := byKey[fig8Key{dano: dano, d: d, variant: fig8Aware, p: p}]
					if red, err, ok := EffectiveReduction(pl.PL, plm2.PL, rb.PL, pl.StdErr, plm2.StdErr, rb.StdErr); ok {
						blindS.Points = append(blindS.Points, Point{X: p, Y: red, Err: err})
					}
					if red, err, ok := EffectiveReduction(pl.PL, plm2.PL, ra.PL, pl.StdErr, plm2.StdErr, ra.StdErr); ok {
						awareS.Points = append(awareS.Points, Point{X: p, Y: red, Err: err})
					}
				}
				redSeries = append(redSeries, blindS, awareS)
			}
			res.Reduction[dano] = redSeries
		}
		return res, nil
	}

	return cfg.memorySweep("fig8", grid, cfgOf, reduce)
}

// RunFig8 regenerates the figure.
func RunFig8(cfg Fig8Config) Fig8Result {
	return cfg.runSweep(cfg.sweep()).Reduced.(Fig8Result)
}

// EffectiveReduction evaluates the paper's Eq. (4):
//
//	d − deff = ln(pLano/pL) / (0.5 * ln(pL(d−2)/pL(d)))
//
// propagating relative statistical errors; ok is false when the inputs are
// degenerate (zero rates) or, per the paper's plotting rule, the standard
// error of the reduction exceeds four.
func EffectiveReduction(pL, pLm2, pLano, ePL, ePLm2, ePLano float64) (reduction, stderr float64, ok bool) {
	if pL <= 0 || pLm2 <= 0 || pLano <= 0 || pLm2 <= pL {
		return 0, 0, false
	}
	den := 0.5 * math.Log(pLm2/pL)
	num := math.Log(pLano / pL)
	reduction = num / den
	// First-order error propagation on the logs.
	relAno := ePLano / pLano
	relL := ePL / pL
	relM2 := ePLm2 / pLm2
	eNum := math.Sqrt(relAno*relAno + relL*relL)
	eDen := 0.5 * math.Sqrt(relM2*relM2+relL*relL)
	stderr = math.Abs(reduction) * math.Sqrt(math.Pow(eNum/num, 2)+math.Pow(eDen/den, 2))
	if math.IsNaN(stderr) || stderr > 4 {
		return reduction, stderr, false
	}
	return reduction, stderr, true
}

// RenderFig8 writes all panels in ascending anomaly-size order.
func RenderFig8(w io.Writer, r Fig8Result) {
	for _, dano := range sortedKeys(r.Rates) {
		renderSeries(w, fmt.Sprintf("Fig 8 (top): logical error rates, anomaly size = %d", dano), r.Rates[dano])
	}
	for _, dano := range sortedKeys(r.Reduction) {
		renderSeries(w, fmt.Sprintf("Fig 8 (bottom): code distance reduction, anomaly size = %d", dano), r.Reduction[dano])
	}
}

func sortedKeys(m map[int][]Series) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
