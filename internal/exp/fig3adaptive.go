package exp

import (
	"fmt"
	"io"

	"q3de/internal/lattice"
	"q3de/internal/sim"
	"q3de/internal/sweep"
)

// Fig3AdaptiveConfig parameterises the adaptive re-declaration of Fig. 3:
// the same (mbbe, distance, rate) curves, but every point runs under a
// sequential stopping target instead of a fixed shots-per-point budget.
// Above-threshold points stop within a few shards once their interval
// tightens; deep sub-threshold points keep sampling up to the cap.
type Fig3AdaptiveConfig struct {
	Fig3Config
	// TargetRSE is the per-point relative CI half-width target.
	TargetRSE float64
	// MaxShots caps any single point (the adaptive budget's safety net).
	MaxShots int64
}

// DefaultFig3Adaptive scales the stopping target with the budget tier: the
// quick tier accepts a loose 20% interval, full tightens to 5%. The shot cap
// trades tail latency for CI attainment per tier: quick reuses the fixed
// budget as its cap (the experiment is never slower than fig3 itself, and the
// savings show up as points stopping under the cap), while the deeper tiers
// grant 2x/4x headroom so sub-threshold points can actually reach the target.
func DefaultFig3Adaptive(o Options) Fig3AdaptiveConfig {
	rse := o.TargetRSE
	capMult := int64(1)
	switch o.Budget {
	case BudgetFull:
		capMult = 4
		if rse <= 0 {
			rse = 0.05
		}
	case BudgetStandard:
		capMult = 2
		if rse <= 0 {
			rse = 0.1
		}
	default:
		if rse <= 0 {
			rse = 0.2
		}
	}
	shots, _ := o.Budget.shots()
	return Fig3AdaptiveConfig{
		Fig3Config: DefaultFig3(o),
		TargetRSE:  rse,
		MaxShots:   capMult * shots,
	}
}

// Fig3AdaptiveResult carries the curves plus the aggregate shot accounting
// the experiment exists to demonstrate.
type Fig3AdaptiveResult struct {
	Series []Series
	// ShotsUsed sums the shots the stopped prefixes retained; ShotsCap sums
	// the per-point caps the fixed-budget declaration would have burned.
	ShotsUsed int64
	ShotsCap  int64
}

func (cfg Fig3AdaptiveConfig) sweep() *sweep.Sweep {
	grid := sweep.Grid{Axes: []sweep.Axis{
		{Name: "mbbe", Values: sweep.Values(false, true)},
		{Name: "d", Values: sweep.Values(cfg.Distances...)},
		{Name: "p", Values: sweep.Values(cfg.Rates...)},
	}}
	cfgOf := func(pt sweep.Point) sim.MemoryConfig {
		d, p := pt.Int("d"), pt.Float("p")
		var box *lattice.Box
		if pt.Bool("mbbe") {
			b := lattice.New(d, d).CenteredBox(cfg.DAno)
			box = &b
		}
		return sim.MemoryConfig{
			D: d, P: p, Box: box, Pano: cfg.PAno,
			Decoder: cfg.Decoder, Aware: false,
			MaxShots: cfg.MaxShots, TargetRSE: cfg.TargetRSE,
			Seed: cfg.Seed ^ uint64(d)<<32 ^ hashFloat(p), Workers: cfg.Workers,
		}
	}
	reduce := func(rs []sweep.PointResult) (any, error) {
		out := Fig3AdaptiveResult{}
		for _, r := range rs {
			suffix := "without MBBE"
			if r.Point.Bool("mbbe") {
				suffix = "with MBBE"
			}
			name := seriesName(r.Point.Int("d"), suffix)
			if len(out.Series) == 0 || out.Series[len(out.Series)-1].Name != name {
				out.Series = append(out.Series, Series{Name: name})
			}
			m := memOf(r)
			s := &out.Series[len(out.Series)-1]
			s.Points = append(s.Points, Point{X: r.Point.Float("p"), Y: m.PL, Err: m.StdErr})
			out.ShotsUsed += m.Shots
			out.ShotsCap += m.Config.MaxShots
		}
		return out, nil
	}
	return cfg.memorySweep("fig3-adaptive", grid, cfgOf, reduce)
}

// RunFig3Adaptive produces the adaptive Fig. 3 curves with shot accounting.
func RunFig3Adaptive(cfg Fig3AdaptiveConfig) Fig3AdaptiveResult {
	return cfg.runSweep(cfg.sweep()).Reduced.(Fig3AdaptiveResult)
}

// RenderFig3Adaptive writes the curves in the harness text format followed by
// the shots-to-CI accounting.
func RenderFig3Adaptive(w io.Writer, cfg Fig3AdaptiveConfig, res Fig3AdaptiveResult) {
	renderSeries(w, fmt.Sprintf(
		"Fig 3 (adaptive): logical error rate vs physical error rate, sequential stopping at %.0f%% relative CI half-width",
		100*cfg.TargetRSE), res.Series)
	fmt.Fprintf(w, "# shots used %d of %d cap (%.1fx saved)\n",
		res.ShotsUsed, res.ShotsCap, float64(res.ShotsCap)/float64(max(res.ShotsUsed, 1)))
}
