package exp

import (
	"context"
	"fmt"
	"io"
	"math"
	"slices"

	"q3de/internal/deform"
	"q3de/internal/isa"
	"q3de/internal/stats"
	"q3de/internal/sweep"
)

// Fig10Config parameterises experiment E5 (paper Fig. 10): instruction
// throughput under cosmic rays on an 11x11 qubit plane with 25 logical
// qubits executing random meas_ZZ instructions.
type Fig10Config struct {
	Options
	D            int   // code distance (latency unit), paper uses d cycles
	PlaneSize    int   // paper: 11
	Instructions int   // paper: 1e4
	Durations    []int // MBBE durations in units of d cycles (paper: 100, 1000)
	// Frequencies are the per-block strike probabilities per d cycles
	// (the paper's x axis d*tau_cyc*fano), swept logarithmically.
	Frequencies []float64
}

// DefaultFig10 returns the paper's configuration.
func DefaultFig10(o Options) Fig10Config {
	cfg := Fig10Config{
		Options: o, D: 11, PlaneSize: 11,
		Instructions: 10000,
		Durations:    []int{100, 1000},
		Frequencies:  []float64{1e-6, 3e-6, 1e-5, 3e-5, 1e-4},
	}
	if o.Budget == BudgetQuick {
		cfg.Instructions = 1500
		cfg.Frequencies = []float64{1e-6, 1e-5, 1e-4}
	}
	return cfg
}

// Fig10 scheduler-mode axis values.
const (
	fig10Free = "free"
	fig10Base = "baseline"
	fig10Q3DE = "q3de"
)

// fig10Inputs resolves one grid point into the scheduler mode and MBBE
// duration (zero outside the Q3DE mode, matching the original loop).
func fig10Inputs(pt sweep.Point) (isa.Mode, int) {
	switch pt.Str("mode") {
	case fig10Free:
		return isa.ModeMBBEFree, 0
	case fig10Base:
		return isa.ModeBaseline, 0
	default:
		return isa.ModeQ3DE, pt.Int("dur")
	}
}

// sweep declares the grid — scheduler mode × duration × frequency, with the
// duration axis collapsed for the modes that ignore it — and the reducer
// ordering the throughput samples into the paper's curves.
func (cfg Fig10Config) sweep() *sweep.Sweep {
	// The free and baseline modes ignore the duration, so they ride on one
	// anchor cell; with no durations configured at all the anchor keeps the
	// axis non-empty (no Q3DE points survive Keep, matching the
	// pre-refactor loop, but free/baseline still evaluate).
	durAxis := cfg.Durations
	if len(durAxis) == 0 {
		durAxis = []int{0}
	}
	anchor := durAxis[0]
	grid := sweep.Grid{
		Axes: []sweep.Axis{
			{Name: "mode", Values: []any{fig10Free, fig10Base, fig10Q3DE}},
			{Name: "dur", Values: sweep.Values(durAxis...)},
			{Name: "f", Values: sweep.Values(cfg.Frequencies...)},
		},
		Keep: func(pt sweep.Point) bool {
			if pt.Str("mode") == fig10Q3DE {
				return slices.Contains(cfg.Durations, pt.Int("dur"))
			}
			return pt.Int("dur") == anchor
		},
	}
	type fig10Key struct {
		mode string
		dur  int
		f    float64
	}
	return &sweep.Sweep{
		Name: "fig10", Kind: "fig10", Grid: grid,
		Key: func(pt sweep.Point) (string, bool) {
			mode, dur := fig10Inputs(pt)
			return canonJSON(struct {
				Mode, Dur, D, Plane, Instr int
				F                          float64
				Seed                       uint64
			}{int(mode), dur, cfg.D, cfg.PlaneSize, cfg.Instructions, pt.Float("f"), cfg.Seed}), true
		},
		Eval: func(_ context.Context, pt sweep.Point) (any, error) {
			mode, dur := fig10Inputs(pt)
			return cfg.throughput(mode, pt.Float("f"), dur), nil
		},
		Reduce: func(rs []sweep.PointResult) (any, error) {
			byKey := make(map[fig10Key]float64, len(rs))
			for _, r := range rs {
				k := fig10Key{mode: r.Point.Str("mode"), f: r.Point.Float("f")}
				if k.mode == fig10Q3DE {
					k.dur = r.Point.Int("dur")
				}
				byKey[k] = r.Value.(float64)
			}
			free := Series{Name: "MBBE free"}
			base := Series{Name: "baseline"}
			var q3de []Series
			for _, dur := range cfg.Durations {
				q3de = append(q3de, Series{Name: fmt.Sprintf("Q3DE tau_ano/(d tau_cyc) = %d", dur)})
			}
			for _, f := range cfg.Frequencies {
				free.Points = append(free.Points, Point{X: f, Y: byKey[fig10Key{mode: fig10Free, f: f}]})
				base.Points = append(base.Points, Point{X: f, Y: byKey[fig10Key{mode: fig10Base, f: f}]})
				for i, dur := range cfg.Durations {
					q3de[i].Points = append(q3de[i].Points, Point{X: f, Y: byKey[fig10Key{mode: fig10Q3DE, dur: dur, f: f}]})
				}
			}
			return append([]Series{free, base}, q3de...), nil
		},
	}
}

// RunFig10 simulates the scheduler for each mode and frequency and reports
// the average number of completed instructions per d code cycles.
func RunFig10(cfg Fig10Config) []Series {
	return cfg.runSweep(cfg.sweep()).Reduced.([]Series)
}

// throughput runs one scheduler simulation and returns completed
// instructions per d cycles.
func (cfg Fig10Config) throughput(mode isa.Mode, freqPerDCycle float64, durD int) float64 {
	plane := deform.NewPlane(cfg.PlaneSize, cfg.PlaneSize)
	ids, pos := plane.PlaceLogicalGrid()
	s := isa.NewScheduler(mode, cfg.D, plane, ids, pos)
	rng := stats.NewRNG(cfg.Seed, uint64(mode)<<32^uint64(durD)<<8^hashFloat(freqPerDCycle))

	for i := 0; i < cfg.Instructions; i++ {
		a := rng.IntN(len(ids))
		b := rng.IntN(len(ids) - 1)
		if b >= a {
			b++
		}
		s.Enqueue(isa.Instruction{ID: i, Op: isa.MeasZZ, Q1: ids[a], Q2: ids[b]})
	}

	blocks := cfg.PlaneSize * cfg.PlaneSize
	perCycle := freqPerDCycle / float64(cfg.D)
	maxCycles := 40 * cfg.D * cfg.Instructions / len(ids)
	if mode == isa.ModeQ3DE && perCycle > 0 {
		// Start from the stationary strike population so short runs see the
		// same anomaly load as the paper's long simulation: on average
		// rate*duration strikes are live, with uniformly distributed
		// residual lifetimes.
		durCycles := durD * cfg.D
		n0 := poissonSmall(rng, perCycle*float64(blocks)*float64(durCycles))
		for k := 0; k < n0; k++ {
			s.StrikeBlock(rng.IntN(cfg.PlaneSize), rng.IntN(cfg.PlaneSize), 1+rng.IntN(durCycles))
		}
	}
	cycles := 0
	for s.Completed() < cfg.Instructions && cycles < maxCycles {
		if mode == isa.ModeQ3DE && perCycle > 0 {
			// Expected strikes this cycle over all blocks.
			n := poissonSmall(rng, perCycle*float64(blocks))
			for k := 0; k < n; k++ {
				s.StrikeBlock(rng.IntN(cfg.PlaneSize), rng.IntN(cfg.PlaneSize), s.Cycle()+durD*cfg.D)
			}
		}
		s.Step()
		cycles++
	}
	if cycles == 0 {
		return 0
	}
	return float64(s.Completed()) * float64(cfg.D) / float64(cycles)
}

// poissonSmall draws a Poisson variate with a small mean.
func poissonSmall(rng *statsRand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, prod := 0, 1.0
	for {
		prod *= rng.Float64()
		if prod <= l {
			return k
		}
		k++
	}
}

// RenderFig10 writes the throughput curves.
func RenderFig10(w io.Writer, series []Series) {
	renderSeries(w, "Fig 10: instruction throughput vs cosmic ray frequency d*tau_cyc*fano", series)
}
