package exp

import (
	"fmt"
	"io"
	"text/tabwriter"

	"q3de/internal/control"
	"q3de/internal/hw"
)

// Table3Config parameterises experiment E6 (paper Table III): the memory
// overheads of Q3DE's buffers per logical qubit.
type Table3Config struct {
	D    int // paper: 31
	Cwin int // paper: 300
}

// DefaultTable3 returns the paper's configuration.
func DefaultTable3() Table3Config { return Table3Config{D: 31, Cwin: 300} }

// Table3Row is one line of Table III.
type Table3Row struct {
	Unit    string
	Formula string
	KBits   float64
}

// RunTable3 evaluates the sizing formulas.
func RunTable3(cfg Table3Config) []Table3Row {
	b := control.BufferSizing{D: cfg.D, Cwin: cfg.Cwin}
	return []Table3Row{
		{Unit: "syndrome queue", Formula: "2d^2(cwin + sqrt(2 cwin))", KBits: b.SyndromeQueueBits() / 1000},
		{Unit: "active node counter", Formula: "2d^2 log2 cwin", KBits: b.ActiveNodeCounterBits() / 1000},
		{Unit: "matching queue", Formula: "2d^2 sqrt(cwin/2)", KBits: b.MatchingQueueBits() / 1000},
		{Unit: "inst. hist. buffer", Formula: "negligible", KBits: 0},
		{Unit: "expansion queue", Formula: "negligible", KBits: 0},
		{Unit: "(baseline 2d^3 queue)", Formula: "2d^3", KBits: b.BaselineSyndromeQueueBits() / 1000},
	}
}

// RenderTable3 prints the table.
func RenderTable3(w io.Writer, cfg Table3Config, rows []Table3Row) {
	fmt.Fprintf(w, "# Table III: memory overheads of Q3DE (d=%d, cwin=%d)\n", cfg.D, cfg.Cwin)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Unit\tOrder\tSize")
	for _, r := range rows {
		if r.KBits == 0 {
			fmt.Fprintf(tw, "%s\t%s\t–\n", r.Unit, r.Formula)
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%.0f kbit\n", r.Unit, r.Formula, r.KBits)
	}
	tw.Flush()
}

// RunTable4 evaluates the decoder-unit hardware model (experiment E7).
func RunTable4() []hw.Row { return hw.TableIV() }

// RenderTable4 prints Table IV.
func RenderTable4(w io.Writer, rows []hw.Row) {
	fmt.Fprintln(w, "# Table IV: FPGA implementation model of the greedy-based decoder")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Configuration\tFF (%)\tLUT (%)\tthroughput (match/us)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d (%.0f)\t%d (%.0f)\t%.2f\n",
			r.Config, r.FF, r.FFPct, r.LUT, r.LUTPct, r.Throughput)
	}
	tw.Flush()
}
