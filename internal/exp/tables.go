package exp

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"q3de/internal/control"
	"q3de/internal/hw"
	"q3de/internal/sweep"
)

// Table3Config parameterises experiment E6 (paper Table III): the memory
// overheads of Q3DE's buffers per logical qubit.
type Table3Config struct {
	D    int // paper: 31
	Cwin int // paper: 300
}

// DefaultTable3 returns the paper's configuration.
func DefaultTable3() Table3Config { return Table3Config{D: 31, Cwin: 300} }

// Table3Row is one line of Table III.
type Table3Row struct {
	Unit    string
	Formula string
	KBits   float64
}

// table3Units enumerates the buffer-unit axis in the paper's row order.
var table3Units = []string{
	"syndrome queue", "active node counter", "matching queue",
	"inst. hist. buffer", "expansion queue", "(baseline 2d^3 queue)",
}

// table3Row evaluates one buffer unit's sizing formula.
func table3Row(cfg Table3Config, unit string) Table3Row {
	b := control.BufferSizing{D: cfg.D, Cwin: cfg.Cwin}
	switch unit {
	case "syndrome queue":
		return Table3Row{Unit: unit, Formula: "2d^2(cwin + sqrt(2 cwin))", KBits: b.SyndromeQueueBits() / 1000}
	case "active node counter":
		return Table3Row{Unit: unit, Formula: "2d^2 log2 cwin", KBits: b.ActiveNodeCounterBits() / 1000}
	case "matching queue":
		return Table3Row{Unit: unit, Formula: "2d^2 sqrt(cwin/2)", KBits: b.MatchingQueueBits() / 1000}
	case "(baseline 2d^3 queue)":
		return Table3Row{Unit: unit, Formula: "2d^3", KBits: b.BaselineSyndromeQueueBits() / 1000}
	default: // inst. hist. buffer, expansion queue
		return Table3Row{Unit: unit, Formula: "negligible", KBits: 0}
	}
}

// Table3Sweep declares Table III as a sweep over the buffer-unit axis: the
// tables are grids too, just with formula evaluators instead of Monte-Carlo
// runs, so they schedule, cache and report like every other experiment.
func Table3Sweep(cfg Table3Config) *sweep.Sweep {
	return &sweep.Sweep{
		Name: "table3", Kind: "table3",
		Grid: sweep.Grid{Axes: []sweep.Axis{{Name: "unit", Values: sweep.Values(table3Units...)}}},
		Key: func(pt sweep.Point) (string, bool) {
			return canonJSON(struct {
				Table3Config
				Unit string
			}{cfg, pt.Str("unit")}), true
		},
		Eval: func(_ context.Context, pt sweep.Point) (any, error) {
			return table3Row(cfg, pt.Str("unit")), nil
		},
		Reduce: func(rs []sweep.PointResult) (any, error) {
			rows := make([]Table3Row, 0, len(rs))
			for _, r := range rs {
				rows = append(rows, r.Value.(Table3Row))
			}
			return rows, nil
		},
	}
}

// RunTable3 evaluates the sizing formulas.
func RunTable3(cfg Table3Config) []Table3Row {
	return runTable3(DefaultOptions(), cfg)
}

// runTable3 evaluates the table on explicit options (the figure-job path
// passes the job's engine and context so point progress attributes to it).
func runTable3(o Options, cfg Table3Config) []Table3Row {
	return o.runSweep(Table3Sweep(cfg)).Reduced.([]Table3Row)
}

// RenderTable3 prints the table.
func RenderTable3(w io.Writer, cfg Table3Config, rows []Table3Row) {
	fmt.Fprintf(w, "# Table III: memory overheads of Q3DE (d=%d, cwin=%d)\n", cfg.D, cfg.Cwin)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Unit\tOrder\tSize")
	for _, r := range rows {
		if r.KBits == 0 {
			fmt.Fprintf(tw, "%s\t%s\t–\n", r.Unit, r.Formula)
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%.0f kbit\n", r.Unit, r.Formula, r.KBits)
	}
	tw.Flush()
}

// Table4Sweep declares Table IV as a sweep over the FPGA configuration axis.
func Table4Sweep() *sweep.Sweep {
	all := hw.TableIV()
	configs := make([]string, len(all))
	for i, r := range all {
		configs[i] = r.Config
	}
	return &sweep.Sweep{
		Name: "table4", Kind: "table4",
		Grid: sweep.Grid{Axes: []sweep.Axis{{Name: "config", Values: sweep.Values(configs...)}}},
		Key: func(pt sweep.Point) (string, bool) {
			return canonJSON(struct{ Config string }{pt.Str("config")}), true
		},
		Eval: func(_ context.Context, pt sweep.Point) (any, error) {
			want := pt.Str("config")
			for _, r := range hw.TableIV() {
				if r.Config == want {
					return r, nil
				}
			}
			return nil, fmt.Errorf("table4: unknown configuration %q", want)
		},
		Reduce: func(rs []sweep.PointResult) (any, error) {
			rows := make([]hw.Row, 0, len(rs))
			for _, r := range rs {
				rows = append(rows, r.Value.(hw.Row))
			}
			return rows, nil
		},
	}
}

// RunTable4 evaluates the decoder-unit hardware model (experiment E7).
func RunTable4() []hw.Row {
	return runTable4(DefaultOptions())
}

// runTable4 evaluates the table on explicit options (see runTable3).
func runTable4(o Options) []hw.Row {
	return o.runSweep(Table4Sweep()).Reduced.([]hw.Row)
}

// RenderTable4 prints Table IV.
func RenderTable4(w io.Writer, rows []hw.Row) {
	fmt.Fprintln(w, "# Table IV: FPGA implementation model of the greedy-based decoder")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Configuration\tFF (%)\tLUT (%)\tthroughput (match/us)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d (%.0f)\t%d (%.0f)\t%.2f\n",
			r.Config, r.FF, r.FFPct, r.LUT, r.LUTPct, r.Throughput)
	}
	tw.Flush()
}
