package exp

import (
	"fmt"
	"io"

	"q3de/internal/lattice"
	"q3de/internal/noise"
	"q3de/internal/sim"
	"q3de/internal/sweep"
)

// HeadlineConfig parameterises experiment E8: the Sec. III-A composition of
// Eq. (1), showing that MBBEs inflate the effective logical error rate by a
// large factor (the paper quotes ~100x on average at its reference point).
type HeadlineConfig struct {
	Options
	D    int     // code distance
	P    float64 // physical rate
	DAno int
	PAno float64
	Rays noise.RayParams
}

// DefaultHeadline uses a laptop-tractable reference point (the paper's exact
// point, p=1e-3 at d=21, needs ~1e9 samples to resolve pL; shape is
// preserved at this cheaper point).
func DefaultHeadline(o Options) HeadlineConfig {
	rays := noise.SycamoreRays()
	rays.Fano = 1 // the paper's Fig. 3 discussion uses 1 Hz (footnote 3)
	return HeadlineConfig{
		Options: o, D: 11, P: 8e-3, DAno: 4, PAno: 0.5, Rays: rays,
	}
}

// HeadlineResult reports the Eq. (1) composition.
type HeadlineResult struct {
	PL        float64 // logical rate per cycle without MBBE
	PLAno     float64 // logical rate per cycle with an anomalous region
	Effective float64 // Eq. (1) time-weighted rate
	Inflation float64 // fano*tau*pLano/pL
}

// sweep declares the two-point grid — the clean reference and the anomalous
// region — and the reducer composing Eq. (1) from the pair.
func (cfg HeadlineConfig) sweep() *sweep.Sweep {
	maxShots, maxFail := cfg.Budget.shots()
	grid := sweep.Grid{Axes: []sweep.Axis{{Name: "mbbe", Values: sweep.Values(false, true)}}}
	cfgOf := func(pt sweep.Point) sim.MemoryConfig {
		mc := sim.MemoryConfig{
			D: cfg.D, P: cfg.P, Decoder: cfg.Decoder,
			MaxShots: maxShots, MaxFailures: maxFail, Seed: cfg.Seed, Workers: cfg.Workers,
		}
		if pt.Bool("mbbe") {
			b := lattice.New(cfg.D, cfg.D).CenteredBox(cfg.DAno)
			mc.Box = &b
			mc.Pano = cfg.PAno
			mc.Seed = cfg.Seed + 1
		}
		return mc
	}
	reduce := func(rs []sweep.PointResult) (any, error) {
		clean, dirty := memOf(rs[0]), memOf(rs[1])
		return HeadlineResult{
			PL:        clean.PL,
			PLAno:     dirty.PL,
			Effective: cfg.Rays.EffectiveRate(clean.PL, dirty.PL),
			Inflation: cfg.Rays.InflationRatio(clean.PL, dirty.PL),
		}, nil
	}
	return cfg.memorySweep("headline", grid, cfgOf, reduce)
}

// RunHeadline measures pL and pL,ano and composes Eq. (1).
func RunHeadline(cfg HeadlineConfig) HeadlineResult {
	return cfg.runSweep(cfg.sweep()).Reduced.(HeadlineResult)
}

// RenderHeadline prints the composition.
func RenderHeadline(w io.Writer, cfg HeadlineConfig, r HeadlineResult) {
	fmt.Fprintf(w, "# Eq (1) headline at d=%d, p=%g, dano=%d, pano=%g, fano=%g Hz, tau=%g s\n",
		cfg.D, cfg.P, cfg.DAno, cfg.PAno, cfg.Rays.Fano, cfg.Rays.TauAno)
	fmt.Fprintf(w, "pL        = %.3g per cycle\n", r.PL)
	fmt.Fprintf(w, "pL,ano    = %.3g per cycle\n", r.PLAno)
	fmt.Fprintf(w, "effective = %.3g per cycle (Eq. 1)\n", r.Effective)
	fmt.Fprintf(w, "MBBE inflation factor fano*tau*pLano/pL = %.1f\n", r.Inflation)
}
