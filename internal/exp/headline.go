package exp

import (
	"fmt"
	"io"

	"q3de/internal/lattice"
	"q3de/internal/noise"
	"q3de/internal/sim"
)

// HeadlineConfig parameterises experiment E8: the Sec. III-A composition of
// Eq. (1), showing that MBBEs inflate the effective logical error rate by a
// large factor (the paper quotes ~100x on average at its reference point).
type HeadlineConfig struct {
	Options
	D    int     // code distance
	P    float64 // physical rate
	DAno int
	PAno float64
	Rays noise.RayParams
}

// DefaultHeadline uses a laptop-tractable reference point (the paper's exact
// point, p=1e-3 at d=21, needs ~1e9 samples to resolve pL; shape is
// preserved at this cheaper point).
func DefaultHeadline(o Options) HeadlineConfig {
	rays := noise.SycamoreRays()
	rays.Fano = 1 // the paper's Fig. 3 discussion uses 1 Hz (footnote 3)
	return HeadlineConfig{
		Options: o, D: 11, P: 8e-3, DAno: 4, PAno: 0.5, Rays: rays,
	}
}

// HeadlineResult reports the Eq. (1) composition.
type HeadlineResult struct {
	PL        float64 // logical rate per cycle without MBBE
	PLAno     float64 // logical rate per cycle with an anomalous region
	Effective float64 // Eq. (1) time-weighted rate
	Inflation float64 // fano*tau*pLano/pL
}

// RunHeadline measures pL and pL,ano and composes Eq. (1).
func RunHeadline(cfg HeadlineConfig) HeadlineResult {
	maxShots, maxFail := cfg.Budget.shots()
	clean := cfg.runMemory(sim.MemoryConfig{
		D: cfg.D, P: cfg.P, Decoder: cfg.Decoder,
		MaxShots: maxShots, MaxFailures: maxFail, Seed: cfg.Seed, Workers: cfg.Workers,
	})
	box := lattice.New(cfg.D, cfg.D).CenteredBox(cfg.DAno)
	dirty := cfg.runMemory(sim.MemoryConfig{
		D: cfg.D, P: cfg.P, Box: &box, Pano: cfg.PAno, Decoder: cfg.Decoder,
		MaxShots: maxShots, MaxFailures: maxFail, Seed: cfg.Seed + 1, Workers: cfg.Workers,
	})
	return HeadlineResult{
		PL:        clean.PL,
		PLAno:     dirty.PL,
		Effective: cfg.Rays.EffectiveRate(clean.PL, dirty.PL),
		Inflation: cfg.Rays.InflationRatio(clean.PL, dirty.PL),
	}
}

// RenderHeadline prints the composition.
func RenderHeadline(w io.Writer, cfg HeadlineConfig, r HeadlineResult) {
	fmt.Fprintf(w, "# Eq (1) headline at d=%d, p=%g, dano=%d, pano=%g, fano=%g Hz, tau=%g s\n",
		cfg.D, cfg.P, cfg.DAno, cfg.PAno, cfg.Rays.Fano, cfg.Rays.TauAno)
	fmt.Fprintf(w, "pL        = %.3g per cycle\n", r.PL)
	fmt.Fprintf(w, "pL,ano    = %.3g per cycle\n", r.PLAno)
	fmt.Fprintf(w, "effective = %.3g per cycle (Eq. 1)\n", r.Effective)
	fmt.Fprintf(w, "MBBE inflation factor fano*tau*pLano/pL = %.1f\n", r.Inflation)
}
