package exp

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"q3de/internal/sweep"
)

// TestBudgetScaleTable pins the shared Budget→effort scaling rules that used
// to be duplicated as per-figure switches.
func TestBudgetScaleTable(t *testing.T) {
	cases := []struct {
		name                  string
		budget                Budget
		quick, standard, full int
		want                  int
	}{
		{"fig7 trials quick", BudgetQuick, 12, 40, 200, 12},
		{"fig7 trials standard", BudgetStandard, 12, 40, 200, 40},
		{"fig7 trials full", BudgetFull, 12, 40, 200, 200},
		{"unknown budget falls to full", Budget(99), 1, 2, 3, 3},
	}
	for _, c := range cases {
		if got := c.budget.Scale(c.quick, c.standard, c.full); got != c.want {
			t.Errorf("%s: Scale = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestBudgetCapShotsTable pins the shot-cap rule (slow decoders stay at the
// quick tier, stream rows at the standard tier).
func TestBudgetCapShotsTable(t *testing.T) {
	quickShots, _ := BudgetQuick.shots()
	stdShots, _ := BudgetStandard.shots()
	fullShots, _ := BudgetFull.shots()
	cases := []struct {
		name   string
		budget Budget
		tier   Budget
		want   int64
	}{
		{"quick capped at quick", BudgetQuick, BudgetQuick, quickShots},
		{"standard capped at quick", BudgetStandard, BudgetQuick, quickShots},
		{"full capped at quick", BudgetFull, BudgetQuick, quickShots},
		{"quick capped at standard", BudgetQuick, BudgetStandard, quickShots},
		{"standard capped at standard", BudgetStandard, BudgetStandard, stdShots},
		{"full capped at standard", BudgetFull, BudgetStandard, stdShots},
		{"full capped at full", BudgetFull, BudgetFull, fullShots},
	}
	for _, c := range cases {
		if got := c.budget.CapShots(c.tier); got != c.want {
			t.Errorf("%s: CapShots = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestParseBudgetRoundTrip checks every budget name survives a
// String→ParseBudget round trip, plus the default and error cases.
func TestParseBudgetRoundTrip(t *testing.T) {
	for _, b := range []Budget{BudgetQuick, BudgetStandard, BudgetFull} {
		got, err := ParseBudget(b.String())
		if err != nil {
			t.Errorf("ParseBudget(%q): %v", b.String(), err)
		}
		if got != b {
			t.Errorf("ParseBudget(%q) = %v, want %v", b.String(), got, b)
		}
	}
	if b, err := ParseBudget(""); err != nil || b != BudgetQuick {
		t.Errorf("empty budget = %v, %v; want quick default", b, err)
	}
	if _, err := ParseBudget("paper-scale"); err == nil {
		t.Error("unknown budget accepted")
	}
	if _, err := ParseBudget("Quick"); err == nil {
		t.Error("budget names are case-sensitive")
	}
}

// TestRenderSeriesFormatting pins the harness text format: a title line, a
// per-series header, and one x<TAB>y<TAB>err line per point with %.6g/%.6g/
// %.3g formatting.
func TestRenderSeriesFormatting(t *testing.T) {
	var buf bytes.Buffer
	renderSeries(&buf, "demo title", []Series{
		{Name: "curve a", Points: []Point{
			{X: 0.004, Y: 1.23456789e-3, Err: 0.000123456},
			{X: 100, Y: 0, Err: 0},
		}},
		{Name: "curve b"}, // headers render even for empty curves
	})
	want := "# demo title\n" +
		"## curve a\n" +
		"0.004\t0.00123457\t0.000123\n" +
		"100\t0\t0\n" +
		"## curve b\n"
	if buf.String() != want {
		t.Errorf("renderSeries output:\n%q\nwant:\n%q", buf.String(), want)
	}
}

// TestRunSweepDirectPathHonorsContext covers the harness fallback executor: a
// worker-bounded run without an engine must still stop between grid points
// when the options context is cancelled (the cancellation surfaces as the
// panic convention the engine's job runner recovers).
func TestRunSweepDirectPathHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	o := DefaultOptions()
	o.Workers = 1 // no explicit engine + worker bound => direct serial path
	o.Context = ctx

	evals := 0
	sw := &sweep.Sweep{
		Name: "direct",
		Grid: sweep.Grid{Axes: []sweep.Axis{{Name: "i", Values: []any{0, 1, 2}}}},
		Eval: func(_ context.Context, pt sweep.Point) (any, error) {
			evals++
			cancel()
			return nil, nil
		},
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("cancelled direct sweep must panic with the context error")
		}
		if err, ok := r.(error); !ok || !strings.Contains(err.Error(), context.Canceled.Error()) {
			t.Fatalf("panic payload = %v, want context.Canceled", r)
		}
		if evals != 1 {
			t.Errorf("evaluated %d points after cancellation, want 1", evals)
		}
	}()
	o.runSweep(sw)
}
