package burst

import (
	"testing"

	"q3de/internal/lattice"
	"q3de/internal/noise"
	"q3de/internal/sim"
	"q3de/internal/stats"
)

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	for _, s := range []Source{CosmicRay, AtomLoss, CrystalScramble, Leakage, CalibrationDrift} {
		p, ok := ps[s]
		if !ok {
			t.Fatalf("missing profile for %v", s)
		}
		if p.Source != s {
			t.Errorf("%v: profile source mismatch", s)
		}
		if p.DurationCycles <= 0 || p.MeanCyclesBetween <= 0 {
			t.Errorf("%v: nonpositive timing", s)
		}
		if s.String() == "" {
			t.Errorf("%v: empty name", s)
		}
	}
}

func TestReactionAssignments(t *testing.T) {
	ps := Profiles()
	// Per Sec. IX: rays recover by themselves (expand); atomic mechanisms
	// need active servicing (relocate).
	if ps[CosmicRay].Reaction != ReactExpand {
		t.Error("cosmic rays should be handled by expansion")
	}
	for _, s := range []Source{AtomLoss, CrystalScramble, Leakage, CalibrationDrift} {
		if ps[s].Reaction != ReactRelocate {
			t.Errorf("%v should require relocation", s)
		}
	}
	if ReactExpand.String() != "expand" || ReactRelocate.String() != "relocate" {
		t.Error("reaction names wrong")
	}
}

func TestPanoSaturation(t *testing.T) {
	ps := Profiles()
	if got := ps[AtomLoss].Pano(1e-3); got != 0.5 {
		t.Errorf("saturated source pano = %v, want 0.5", got)
	}
	if got := ps[CosmicRay].Pano(1e-3); got != 0.1 {
		t.Errorf("ray pano = %v, want 0.1", got)
	}
	if got := ps[CosmicRay].Pano(1e-2); got != 0.5 {
		t.Errorf("ray pano should cap at 0.5, got %v", got)
	}
}

func TestRegionGeometry(t *testing.T) {
	l := lattice.New(11, 50)
	rng := stats.NewRNG(1, 2)
	ps := Profiles()

	for trial := 0; trial < 50; trial++ {
		b := ps[CosmicRay].Region(l, rng, 10)
		if b.R1-b.R0+1 != 4 {
			t.Fatalf("ray region rows = %d, want 4", b.R1-b.R0+1)
		}
		if b.R0 < 0 || b.R1 > 10 || b.C0 < 0 || b.C1 > 9 {
			t.Fatalf("region out of bounds: %+v", b)
		}
		if b.T0 != 10 {
			t.Fatalf("onset not honoured: %+v", b)
		}
	}
	// Whole-patch sources cover everything.
	b := ps[CrystalScramble].Region(l, rng, 0)
	if b.R0 != 0 || b.R1 != 10 || b.C0 != 0 {
		t.Errorf("scramble should cover the patch: %+v", b)
	}
	// Single-site sources are 1x1.
	b = ps[AtomLoss].Region(l, rng, 0)
	if b.R1 != b.R0 || b.C1 != b.C0 {
		t.Errorf("atom loss should be a single site: %+v", b)
	}
}

func TestDutyCycle(t *testing.T) {
	ps := Profiles()
	ray := ps[CosmicRay].DutyCycle()
	if ray <= 0 || ray >= 1 {
		t.Errorf("ray duty cycle = %v, want in (0,1)", ray)
	}
	// Leakage is frequent in the long-application regime the paper warns
	// about: its duty cycle should dominate atom loss.
	if ps[Leakage].DutyCycle() <= ps[AtomLoss].DutyCycle() {
		t.Error("leakage should dominate atom loss in duty cycle")
	}
	zero := Profile{DurationCycles: 10}
	if zero.DutyCycle() != 0 {
		t.Error("zero arrival rate should give zero duty")
	}
}

func TestSingleSiteBurstIsDecodable(t *testing.T) {
	// A 1x1 saturated region (atom loss) barely moves the logical error
	// rate of a d=9 code: Q3DE's machinery treats it as a weak MBBE. This
	// validates the paper's claim that single-bit bursts are the easy case.
	d := 9
	l := lattice.New(d, d)
	rng := stats.NewRNG(3, 4)
	prof := Profiles()[AtomLoss]
	box := prof.Region(l, rng, 0)
	box.T1 = l.Rounds - 1

	clean := sim.RunMemory(sim.MemoryConfig{D: d, P: 3e-3, Decoder: sim.DecoderGreedy,
		MaxShots: 6000, Seed: 5})
	lost := sim.RunMemory(sim.MemoryConfig{D: d, P: 3e-3, Box: &box, Pano: prof.Pano(3e-3),
		Decoder: sim.DecoderGreedy, MaxShots: 6000, Seed: 5})
	big := sim.RunMemory(sim.MemoryConfig{D: d, P: 3e-3, Box: ptr(l.CenteredBox(4)), Pano: 0.5,
		Decoder: sim.DecoderGreedy, MaxShots: 6000, Seed: 5})
	if lost.PL >= big.PL {
		t.Errorf("single-site burst (%v) should be far milder than a 4x4 one (%v)", lost.PL, big.PL)
	}
	_ = clean
}

func TestWholePatchBurstSaturates(t *testing.T) {
	// A crystal scramble (whole patch at 50%) destroys the logical qubit:
	// failure probability approaches 1/2 per shot.
	d := 7
	l := lattice.New(d, d)
	rng := stats.NewRNG(7, 8)
	prof := Profiles()[CrystalScramble]
	box := prof.Region(l, rng, 0)
	box.T1 = l.Rounds - 1
	r := sim.RunMemory(sim.MemoryConfig{D: d, P: 1e-3, Box: &box, Pano: 0.5,
		Decoder: sim.DecoderGreedy, MaxShots: 2000, Seed: 9})
	if r.PShot < 0.3 {
		t.Errorf("scrambled patch should be near-random: PShot = %v", r.PShot)
	}
}

func ptr(b lattice.Box) *lattice.Box { return &b }

func TestNoiseIntegration(t *testing.T) {
	// Profiles plug directly into the noise model.
	d := 7
	l := lattice.New(d, d)
	rng := stats.NewRNG(11, 12)
	prof := Profiles()[CosmicRay]
	box := prof.Region(l, rng, 0)
	m := noise.NewModel(l, 1e-3, &box, prof.Pano(1e-3))
	var s noise.Sample
	m.Draw(rng, &s)
	if m.ExpectedFlips() <= 0 {
		t.Error("model should expect flips")
	}
}
