// Package burst models the broader family of multi-bit burst errors the
// paper surveys in Sec. IX beyond superconducting cosmic-ray strikes: atom
// loss and Coulomb-crystal scrambling in trapped ions, leakage out of the
// qubit space, and calibration drifts. Each source maps onto the same
// abstraction Q3DE reacts to — a temporary region of elevated error rate —
// so the detection/deformation/re-decoding machinery applies unchanged; what
// differs is the region geometry, the error level, the duration, and the
// appropriate reaction (code expansion versus patch relocation).
package burst

import (
	"fmt"
	"math/rand/v2"

	"q3de/internal/lattice"
	"q3de/internal/stats"
)

// Source enumerates the MBBE mechanisms of paper Sec. IX.
type Source int

const (
	// CosmicRay is the superconducting-substrate phonon burst (Sec. III):
	// a dano-sized region at 10-100x error rates for ~25 ms.
	CosmicRay Source = iota
	// AtomLoss is a neutral-atom trap loss: a single site at 50% error until
	// the atom is reloaded (Sec. IX-B, first mechanism).
	AtomLoss
	// CrystalScramble is a trapped-ion Coulomb-crystal melt: every ion in
	// the crystal becomes unavailable until re-cooling (Sec. IX-B).
	CrystalScramble
	// Leakage is a transition to a stable state outside the qubit space:
	// a single site at 50% error until re-pumped (Sec. IX-B, second).
	Leakage
	// CalibrationDrift is a stray-field drift in trapped ions: a broad
	// region at moderately elevated error until re-calibration (Sec. IX-B,
	// third).
	CalibrationDrift
)

func (s Source) String() string {
	switch s {
	case CosmicRay:
		return "cosmic-ray"
	case AtomLoss:
		return "atom-loss"
	case CrystalScramble:
		return "crystal-scramble"
	case Leakage:
		return "leakage"
	case CalibrationDrift:
		return "calibration-drift"
	default:
		return fmt.Sprintf("Source(%d)", int(s))
	}
}

// ParseSource maps the CLI/API burst-source names to Sources.
func ParseSource(name string) (Source, error) {
	switch name {
	case "cosmic-ray":
		return CosmicRay, nil
	case "atom-loss":
		return AtomLoss, nil
	case "crystal-scramble":
		return CrystalScramble, nil
	case "leakage":
		return Leakage, nil
	case "calibration-drift":
		return CalibrationDrift, nil
	default:
		return 0, fmt.Errorf("unknown burst source %q", name)
	}
}

// Reaction is the appropriate Q3DE response for a source.
type Reaction int

const (
	// ReactExpand: temporal code expansion suffices (the region recovers by
	// itself).
	ReactExpand Reaction = iota
	// ReactRelocate: the logical qubit must be moved so the region can be
	// actively serviced (atom reload, re-cooling, re-calibration).
	ReactRelocate
)

func (r Reaction) String() string {
	if r == ReactRelocate {
		return "relocate"
	}
	return "expand"
}

// Profile describes one burst mechanism quantitatively.
type Profile struct {
	Source Source
	// Size is the linear extent of the affected region in qubits; 0 means
	// the whole patch (crystal scramble, calibration drift on one trap).
	Size int
	// PanoOverP is the error-rate inflation inside the region; Saturated
	// sources (loss, leakage, scramble) sit at effective rate 1/2.
	PanoOverP float64
	// Saturated marks sources whose error rate is 50% regardless of p.
	Saturated bool
	// DurationCycles is the typical duration in code cycles.
	DurationCycles int
	// MeanCyclesBetween is the mean arrival spacing in code cycles.
	MeanCyclesBetween float64
	// Reaction is the appropriate response.
	Reaction Reaction
}

// Profiles returns literature-derived profiles for each source, normalised
// to a 1 µs code cycle where the source is superconducting and to a 10 µs-1ms
// cycle regime for atomic platforms (atomic gates are slower; values follow
// the paper's quoted observations: ~1 strike/10 s per 26 qubits for rays,
// one loss per two weeks per trap, leakage ~1e-5 per gate).
func Profiles() map[Source]Profile {
	return map[Source]Profile{
		CosmicRay: {
			Source: CosmicRay, Size: 4, PanoOverP: 100,
			DurationCycles: 25000, MeanCyclesBetween: 1e7,
			Reaction: ReactExpand,
		},
		AtomLoss: {
			Source: AtomLoss, Size: 1, Saturated: true,
			DurationCycles: 100000, MeanCyclesBetween: 1.2e9,
			Reaction: ReactRelocate,
		},
		CrystalScramble: {
			Source: CrystalScramble, Size: 0, Saturated: true,
			DurationCycles: 500000, MeanCyclesBetween: 1.2e9,
			Reaction: ReactRelocate,
		},
		Leakage: {
			Source: Leakage, Size: 1, Saturated: true,
			DurationCycles: 50000, MeanCyclesBetween: 1e5,
			Reaction: ReactRelocate,
		},
		CalibrationDrift: {
			Source: CalibrationDrift, Size: 0, PanoOverP: 10,
			DurationCycles: 1000000, MeanCyclesBetween: 1e8,
			Reaction: ReactRelocate,
		},
	}
}

// Region instantiates the burst as an anomalous box on a distance-d lattice
// with the given onset cycle; whole-patch sources cover the full lattice.
func (p Profile) Region(l *lattice.Lattice, rng *rand.Rand, onset int) lattice.Box {
	size := p.Size
	if size <= 0 || size > l.D {
		size = l.D // whole patch
	}
	r0, c0 := 0, 0
	if size < l.D {
		r0 = rng.IntN(l.D - size + 1)
		maxC := l.D - 1 - size + 1
		if maxC < 1 {
			maxC = 1
		}
		c0 = rng.IntN(maxC)
	}
	b := lattice.Box{
		R0: r0, R1: min(l.D-1, r0+size-1),
		C0: c0, C1: min(l.D-2, c0+size-1),
		T0: onset, T1: min(l.Rounds-1, onset+p.DurationCycles),
	}
	return b
}

// SeededRegion places the burst deterministically from a run seed: the
// placement RNG derives from (seed, source), so a (spec, seed) pair maps to
// exactly one region. The engine's stream jobs and the CLI's stream ablation
// share this derivation, so the same seed strikes the same qubits on both
// paths.
func (p Profile) SeededRegion(l *lattice.Lattice, seed uint64, onset int) lattice.Box {
	rng := stats.NewRNG(seed^0xB1A5_75EED, uint64(p.Source))
	return p.Region(l, rng, onset)
}

// Pano returns the in-region physical error rate for a base rate p.
func (p Profile) Pano(base float64) float64 {
	if p.Saturated {
		return 0.5
	}
	v := base * p.PanoOverP
	if v > 0.5 {
		return 0.5
	}
	return v
}

// DutyCycle returns the long-run fraction of time the platform spends under
// this burst type (arrival rate times duration).
func (p Profile) DutyCycle() float64 {
	if p.MeanCyclesBetween <= 0 {
		return 0
	}
	f := float64(p.DurationCycles) / p.MeanCyclesBetween
	if f > 1 {
		return 1
	}
	return f
}
