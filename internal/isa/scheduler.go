package isa

import (
	"fmt"

	"q3de/internal/deform"
)

// Scheduler executes the instruction stream on a block-granularity qubit
// plane using the greedy policy of Sec. VIII-B: walk the queue in order, skip
// (but fence the operands of) instructions that cannot start, and start every
// instruction that commutes with all fenced predecessors and finds resources.
type Scheduler struct {
	Mode  Mode
	D     int // default code distance
	Plane *deform.Plane

	queue     []Instruction
	qubits    map[int]*qubitState
	running   []*running
	anomalous []anomalousBlock
	cycle     int
	done      int

	// ExpandHold is how long (in cycles) an MBBE-triggered expansion is kept;
	// mirrors the MBBE duration.
	ExpandHold int
}

type qubitState struct {
	id          int
	r, c        int
	busy        bool
	expanded    bool
	expandUntil int
	claimed     [][2]int
}

type running struct {
	in       Instruction
	until    int
	path     [][2]int
	operands []int
}

// NewScheduler builds a scheduler over a plane with logical qubits already
// placed (deform.Plane.PlaceLogicalGrid).
func NewScheduler(mode Mode, d int, plane *deform.Plane, ids []int, pos [][2]int) *Scheduler {
	if len(ids) != len(pos) {
		panic("isa: ids and positions must align")
	}
	s := &Scheduler{Mode: mode, D: d, Plane: plane, qubits: make(map[int]*qubitState)}
	for i, id := range ids {
		s.qubits[id] = &qubitState{id: id, r: pos[i][0], c: pos[i][1]}
	}
	return s
}

// Enqueue appends instructions to the FIFO queue.
func (s *Scheduler) Enqueue(ins ...Instruction) { s.queue = append(s.queue, ins...) }

// Pending returns the number of queued (not yet started) instructions.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Completed returns the number of finished instructions.
func (s *Scheduler) Completed() int { return s.done }

// Cycle returns the current code cycle.
func (s *Scheduler) Cycle() int { return s.cycle }

// latency returns the instruction latency for the involved qubits: the
// paper's rule that most instructions take time proportional to the code
// distance, doubled for the baseline architecture or for expanded patches.
func (s *Scheduler) latency(operands []int) int {
	d := s.D
	if s.Mode == ModeBaseline {
		return 2 * d
	}
	for _, q := range operands {
		if s.qubits[q].expanded {
			return 2 * d
		}
	}
	return d
}

// StrikeBlock reacts to an MBBE on block (r,c) lasting until the given
// cycle. In Q3DE mode a strike on a logical patch triggers op_expand; a
// strike on a vacant block marks it anomalous so the router avoids it
// (Sec. VIII-B: "MBBEs on unused blocks are detected via direct measurements
// of data qubits and the instruction scheduler avoids using these blocks").
// Other modes ignore strikes (the baseline tolerates them by distance).
func (s *Scheduler) StrikeBlock(r, c, until int) {
	if s.Mode != ModeQ3DE {
		return
	}
	switch s.Plane.State(r, c) {
	case deform.BlockLogical:
		q := s.qubits[s.Plane.Owner(r, c)]
		if q == nil {
			panic(fmt.Sprintf("isa: logical block (%d,%d) without qubit", r, c))
		}
		if q.expanded {
			if until > q.expandUntil {
				q.expandUntil = until
			}
			return
		}
		claimed, ok := s.Plane.ExpandAt(q.r, q.c, q.id)
		if !ok {
			// No room: the qubit stays unexpanded and simply rides out the
			// MBBE at higher error rate (throughput unaffected).
			return
		}
		q.expanded = true
		q.expandUntil = until
		q.claimed = claimed
	case deform.BlockVacant:
		s.Plane.Set(r, c, deform.BlockAnomalous, -1)
		s.anomalous = append(s.anomalous, anomalousBlock{r: r, c: c, until: until})
	case deform.BlockExpansion:
		// Striking the claimed expansion space of a patch extends its
		// expansion: the region stays hot.
		if q := s.qubits[s.Plane.Owner(r, c)]; q != nil && q.expanded && until > q.expandUntil {
			q.expandUntil = until
		}
	case deform.BlockRouting:
		// The block is busy with lattice surgery; remember the strike so the
		// block is quarantined once released (Step applies pending marks).
		s.anomalous = append(s.anomalous, anomalousBlock{r: r, c: c, until: until})
	}
}

type anomalousBlock struct {
	r, c, until int
}

// Step advances one code cycle: completes finished instructions, expires
// expansions and anomalous blocks, then starts every startable instruction
// under the greedy in-order policy.
func (s *Scheduler) Step() {
	s.cycle++

	// Complete running instructions.
	kept := s.running[:0]
	for _, r := range s.running {
		if s.cycle >= r.until {
			s.done++
			s.Plane.Release(r.path)
			for _, q := range r.operands {
				s.qubits[q].busy = false
			}
			continue
		}
		kept = append(kept, r)
	}
	s.running = kept

	// Expire expansions.
	for _, q := range s.qubits {
		if q.expanded && s.cycle >= q.expandUntil {
			s.Plane.Release(q.claimed)
			q.claimed = nil
			q.expanded = false
		}
	}
	// Expire anomalous blocks and quarantine released blocks with pending
	// strike marks.
	keptA := s.anomalous[:0]
	for _, a := range s.anomalous {
		if s.cycle >= a.until {
			if s.Plane.State(a.r, a.c) == deform.BlockAnomalous {
				s.Plane.Set(a.r, a.c, deform.BlockVacant, -1)
			}
			continue
		}
		if s.Plane.State(a.r, a.c) == deform.BlockVacant {
			s.Plane.Set(a.r, a.c, deform.BlockAnomalous, -1)
		}
		keptA = append(keptA, a)
	}
	s.anomalous = keptA

	// Greedy in-order start.
	var fenced []Instruction
	rest := s.queue[:0]
	for _, in := range s.queue {
		ok := true
		for _, f := range fenced {
			if !Commutes(in, f) {
				ok = false
				break
			}
		}
		if ok && s.tryStart(in) {
			continue
		}
		fenced = append(fenced, in)
		rest = append(rest, in)
	}
	s.queue = rest
}

// tryStart attempts to allocate resources and start the instruction.
func (s *Scheduler) tryStart(in Instruction) bool {
	operands := in.Qubits()
	for _, q := range operands {
		st, ok := s.qubits[q]
		if !ok {
			panic(fmt.Sprintf("isa: unknown qubit %d", q))
		}
		if st.busy {
			return false
		}
	}
	var path [][2]int
	if in.Op == MeasZZ {
		a, b := s.qubits[in.Q1], s.qubits[in.Q2]
		p, ok := s.Plane.FindPath([2]int{a.r, a.c}, [2]int{b.r, b.c})
		if !ok {
			return false
		}
		path = p
		for _, blk := range path {
			s.Plane.Set(blk[0], blk[1], deform.BlockRouting, in.ID)
		}
	}
	for _, q := range operands {
		s.qubits[q].busy = true
	}
	s.running = append(s.running, &running{
		in: in, until: s.cycle + s.latency(operands), path: path, operands: operands,
	})
	return true
}
