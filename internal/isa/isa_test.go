package isa

import (
	"testing"

	"q3de/internal/deform"
	"q3de/internal/stats"
)

func TestOpcodeProperties(t *testing.T) {
	if MeasZZ.NumQubits() != 2 || Read.NumQubits() != 0 || OpH.NumQubits() != 1 {
		t.Error("operand counts wrong")
	}
	names := map[Opcode]string{
		InitZero: "init_zero", InitA: "init_A", InitY: "init_Y", OpH: "op_H",
		MeasZ: "meas_Z", MeasZZ: "meas_ZZ", Read: "read", OpExpand: "op_expand",
	}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
}

func TestCommutes(t *testing.T) {
	a := Instruction{Op: MeasZZ, Q1: 0, Q2: 1}
	b := Instruction{Op: MeasZZ, Q1: 2, Q2: 3}
	c := Instruction{Op: MeasZ, Q1: 1}
	r := Instruction{Op: Read}
	if !Commutes(a, b) {
		t.Error("disjoint meas_ZZ should commute")
	}
	if Commutes(a, c) {
		t.Error("shared qubit should not commute")
	}
	if !Commutes(a, r) || !Commutes(r, r) {
		t.Error("read touches no qubits and commutes with everything")
	}
}

func newSched(mode Mode) (*Scheduler, []int) {
	plane := deform.NewPlane(11, 11)
	ids, pos := plane.PlaceLogicalGrid()
	return NewScheduler(mode, 11, plane, ids, pos), ids
}

func TestSingleMeasZZCompletes(t *testing.T) {
	s, ids := newSched(ModeMBBEFree)
	s.Enqueue(Instruction{ID: 1, Op: MeasZZ, Q1: ids[0], Q2: ids[1]})
	for i := 0; i < 3*s.D; i++ {
		s.Step()
	}
	if s.Completed() != 1 {
		t.Fatalf("completed = %d, want 1", s.Completed())
	}
	if s.Plane.CountState(deform.BlockRouting) != 0 {
		t.Error("routing blocks not released after completion")
	}
}

func TestLatencyProportionalToDistance(t *testing.T) {
	s, ids := newSched(ModeMBBEFree)
	s.Enqueue(Instruction{ID: 1, Op: MeasZ, Q1: ids[0]})
	steps := 0
	for s.Completed() == 0 {
		s.Step()
		steps++
		if steps > 100 {
			t.Fatal("instruction never completed")
		}
	}
	// Starts on the first step, runs for D cycles.
	if steps != s.D+1 {
		t.Errorf("meas_Z took %d steps, want D+1 = %d", steps, s.D+1)
	}
}

func TestBaselineDoublesLatency(t *testing.T) {
	s, ids := newSched(ModeBaseline)
	s.Enqueue(Instruction{ID: 1, Op: MeasZ, Q1: ids[0]})
	steps := 0
	for s.Completed() == 0 {
		s.Step()
		steps++
		if steps > 100 {
			t.Fatal("instruction never completed")
		}
	}
	if steps != 2*s.D+1 {
		t.Errorf("baseline meas_Z took %d steps, want 2D+1 = %d", steps, 2*s.D+1)
	}
}

func TestDisjointInstructionsRunConcurrently(t *testing.T) {
	s, ids := newSched(ModeMBBEFree)
	s.Enqueue(
		Instruction{ID: 1, Op: MeasZZ, Q1: ids[0], Q2: ids[1]},
		Instruction{ID: 2, Op: MeasZZ, Q1: ids[2], Q2: ids[3]},
	)
	for i := 0; i < s.D+2; i++ {
		s.Step()
	}
	if s.Completed() != 2 {
		t.Errorf("disjoint instructions should finish together: %d done", s.Completed())
	}
}

func TestConflictingInstructionsSerialize(t *testing.T) {
	s, ids := newSched(ModeMBBEFree)
	s.Enqueue(
		Instruction{ID: 1, Op: MeasZZ, Q1: ids[0], Q2: ids[1]},
		Instruction{ID: 2, Op: MeasZZ, Q1: ids[1], Q2: ids[2]}, // shares ids[1]
	)
	for i := 0; i < s.D+2; i++ {
		s.Step()
	}
	if s.Completed() != 1 {
		t.Errorf("conflicting second instruction should wait: %d done", s.Completed())
	}
	for i := 0; i < s.D+2; i++ {
		s.Step()
	}
	if s.Completed() != 2 {
		t.Errorf("second instruction should finish eventually: %d done", s.Completed())
	}
}

func TestFenceBlocksNonCommutingBypass(t *testing.T) {
	// Instruction 3 commutes with neither 1 nor 2; even when 2 is stuck,
	// 3 must not start before 2.
	s, ids := newSched(ModeMBBEFree)
	s.Enqueue(
		Instruction{ID: 1, Op: MeasZZ, Q1: ids[0], Q2: ids[1]},
		Instruction{ID: 2, Op: MeasZ, Q1: ids[1]},              // stuck behind 1
		Instruction{ID: 3, Op: MeasZZ, Q1: ids[1], Q2: ids[2]}, // stuck behind 2
		Instruction{ID: 4, Op: MeasZ, Q1: ids[5]},              // independent, may bypass
	)
	s.Step()
	if s.Pending() != 2 {
		t.Errorf("pending = %d, want 2 (instructions 2 and 3 fenced)", s.Pending())
	}
}

func TestQ3DEStrikeOnLogicalBlockExpands(t *testing.T) {
	s, ids := newSched(ModeQ3DE)
	q := s.qubits[ids[0]]
	s.StrikeBlock(q.r, q.c, 50)
	if !q.expanded {
		t.Fatal("strike on logical block should expand the patch")
	}
	if s.Plane.CountState(deform.BlockExpansion) != 3 {
		t.Errorf("expansion should claim 3 blocks, got %d", s.Plane.CountState(deform.BlockExpansion))
	}
	// Latency of operations on the expanded qubit doubles.
	s.Enqueue(Instruction{ID: 1, Op: MeasZ, Q1: ids[0]})
	steps := 0
	for s.Completed() == 0 {
		s.Step()
		steps++
		if steps > 200 {
			t.Fatal("never completed")
		}
	}
	if steps != 2*s.D+1 {
		t.Errorf("expanded-qubit op took %d steps, want %d", steps, 2*s.D+1)
	}
	// Expansion expires and blocks return.
	for s.Cycle() < 60 {
		s.Step()
	}
	if q.expanded || s.Plane.CountState(deform.BlockExpansion) != 0 {
		t.Error("expansion should expire at the given cycle")
	}
}

func TestQ3DEStrikeOnVacantBlockAvoided(t *testing.T) {
	s, _ := newSched(ModeQ3DE)
	s.StrikeBlock(0, 0, 10)
	if s.Plane.State(0, 0) != deform.BlockAnomalous {
		t.Fatal("vacant block should be marked anomalous")
	}
	for s.Cycle() < 12 {
		s.Step()
	}
	if s.Plane.State(0, 0) != deform.BlockVacant {
		t.Error("anomalous block should recover after the duration")
	}
}

func TestBaselineIgnoresStrikes(t *testing.T) {
	s, ids := newSched(ModeBaseline)
	q := s.qubits[ids[0]]
	s.StrikeBlock(q.r, q.c, 1000)
	if q.expanded || s.Plane.CountState(deform.BlockExpansion) != 0 {
		t.Error("baseline must not react to strikes")
	}
}

func TestRepeatedStrikeExtendsExpansion(t *testing.T) {
	s, ids := newSched(ModeQ3DE)
	q := s.qubits[ids[0]]
	s.StrikeBlock(q.r, q.c, 50)
	s.StrikeBlock(q.r, q.c, 120)
	if q.expandUntil != 120 {
		t.Errorf("second strike should extend expansion to 120, got %d", q.expandUntil)
	}
}

func TestThroughputOrderingAcrossModes(t *testing.T) {
	// With random meas_ZZ workloads, MBBE-free >= Q3DE >= baseline in
	// completed instructions over a fixed horizon (Q3DE only pays when rays
	// strike; the baseline always pays double latency).
	run := func(mode Mode, strike bool) int {
		plane := deform.NewPlane(11, 11)
		ids, pos := plane.PlaceLogicalGrid()
		s := NewScheduler(mode, 11, plane, ids, pos)
		rng := stats.NewRNG(71, 72)
		for i := 0; i < 500; i++ {
			a, b := ids[rng.IntN(len(ids))], ids[rng.IntN(len(ids))]
			if a == b {
				b = ids[(rng.IntN(len(ids)-1)+1+indexOf(ids, a))%len(ids)]
			}
			s.Enqueue(Instruction{ID: i, Op: MeasZZ, Q1: a, Q2: b})
		}
		for i := 0; i < 1500; i++ {
			if strike && mode == ModeQ3DE && i%300 == 0 {
				s.StrikeBlock(rng.IntN(11), rng.IntN(11), i+100)
			}
			s.Step()
		}
		return s.Completed()
	}
	free := run(ModeMBBEFree, false)
	q3de := run(ModeQ3DE, true)
	base := run(ModeBaseline, false)
	if !(free >= q3de && q3de >= base) {
		t.Errorf("ordering violated: free=%d q3de=%d baseline=%d", free, q3de, base)
	}
	if base == 0 || free == 0 {
		t.Error("schedulers completed nothing")
	}
}

func indexOf(xs []int, x int) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}
