package isa

import (
	"testing"
	"testing/quick"

	"q3de/internal/deform"
	"q3de/internal/stats"
)

// TestSchedulerConservesInstructions checks the bookkeeping invariant:
// enqueued = completed + pending + in-flight at every step, for random
// workloads, strike patterns and modes.
func TestSchedulerConservesInstructions(t *testing.T) {
	f := func(seed uint64, modeRaw, nRaw uint8) bool {
		mode := Mode(int(modeRaw) % 3)
		n := int(nRaw)%60 + 1
		plane := deform.NewPlane(11, 11)
		ids, pos := plane.PlaceLogicalGrid()
		s := NewScheduler(mode, 7, plane, ids, pos)
		rng := stats.NewRNG(seed, 77)
		for i := 0; i < n; i++ {
			a := rng.IntN(len(ids))
			b := rng.IntN(len(ids) - 1)
			if b >= a {
				b++
			}
			s.Enqueue(Instruction{ID: i, Op: MeasZZ, Q1: ids[a], Q2: ids[b]})
		}
		for cycle := 0; cycle < 300; cycle++ {
			if rng.IntN(40) == 0 {
				s.StrikeBlock(rng.IntN(11), rng.IntN(11), cycle+30)
			}
			s.Step()
			inFlight := len(s.running)
			if s.Completed()+s.Pending()+inFlight != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestSchedulerEventuallyDrains checks liveness: every random workload
// completes within a generous horizon in every mode.
func TestSchedulerEventuallyDrains(t *testing.T) {
	for _, mode := range []Mode{ModeMBBEFree, ModeBaseline, ModeQ3DE} {
		plane := deform.NewPlane(11, 11)
		ids, pos := plane.PlaceLogicalGrid()
		s := NewScheduler(mode, 7, plane, ids, pos)
		rng := stats.NewRNG(123, uint64(mode))
		n := 120
		for i := 0; i < n; i++ {
			a := rng.IntN(len(ids))
			b := rng.IntN(len(ids) - 1)
			if b >= a {
				b++
			}
			s.Enqueue(Instruction{ID: i, Op: MeasZZ, Q1: ids[a], Q2: ids[b]})
		}
		for cycle := 0; cycle < 20000 && s.Completed() < n; cycle++ {
			s.Step()
		}
		if s.Completed() != n {
			t.Errorf("%v: drained only %d of %d", mode, s.Completed(), n)
		}
		if got := plane.CountState(deform.BlockRouting); got != 0 {
			t.Errorf("%v: %d routing blocks leaked", mode, got)
		}
	}
}

// TestSchedulerBlocksNeverLeakAfterStrikes checks that expansion and
// anomalous blocks always return to vacancy after their deadlines.
func TestSchedulerBlocksNeverLeakAfterStrikes(t *testing.T) {
	plane := deform.NewPlane(11, 11)
	ids, pos := plane.PlaceLogicalGrid()
	s := NewScheduler(ModeQ3DE, 7, plane, ids, pos)
	rng := stats.NewRNG(9, 9)
	for cycle := 0; cycle < 400; cycle++ {
		if cycle < 200 && cycle%11 == 0 {
			s.StrikeBlock(rng.IntN(11), rng.IntN(11), cycle+50)
		}
		s.Step()
	}
	if got := plane.CountState(deform.BlockAnomalous); got != 0 {
		t.Errorf("%d anomalous blocks leaked", got)
	}
	if got := plane.CountState(deform.BlockExpansion); got != 0 {
		t.Errorf("%d expansion blocks leaked", got)
	}
}
