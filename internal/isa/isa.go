// Package isa implements the succinct FTQC instruction set of paper Table II
// and the instruction scheduling machinery of Sec. II-B and VIII-B: a FIFO
// instruction queue whose entries commit as soon as they commute with every
// preceding uncommitted instruction and the qubit plane has room, with
// lattice-surgery routing through vacant blocks and latencies proportional to
// the code distance.
package isa

import "fmt"

// Opcode enumerates the instruction set of Table II.
type Opcode uint8

const (
	// InitZero initialises a logical qubit in |0>.
	InitZero Opcode = iota
	// InitA initialises a logical qubit in a noisy |A> magic state.
	InitA
	// InitY initialises a logical qubit in a noisy |Y> state.
	InitY
	// OpH performs a logical Hadamard.
	OpH
	// MeasZ measures a logical qubit in the Z basis.
	MeasZ
	// MeasZZ measures two logical qubits jointly in the ZZ basis via lattice
	// surgery through vacant blocks.
	MeasZZ
	// Read sends an error-corrected measurement value to the host CPU; it
	// requests no action on the qubit plane.
	Read
	// OpExpand is Q3DE's extension: temporally expand a code distance to
	// mitigate an MBBE.
	OpExpand
)

func (o Opcode) String() string {
	switch o {
	case InitZero:
		return "init_zero"
	case InitA:
		return "init_A"
	case InitY:
		return "init_Y"
	case OpH:
		return "op_H"
	case MeasZ:
		return "meas_Z"
	case MeasZZ:
		return "meas_ZZ"
	case Read:
		return "read"
	case OpExpand:
		return "op_expand"
	default:
		return fmt.Sprintf("Opcode(%d)", uint8(o))
	}
}

// NumQubits returns how many logical-qubit operands the opcode takes.
func (o Opcode) NumQubits() int {
	switch o {
	case MeasZZ:
		return 2
	case Read:
		return 0
	default:
		return 1
	}
}

// Instruction is one entry of the instruction queue.
type Instruction struct {
	ID int
	Op Opcode
	Q1 int // first operand (qubit id)
	Q2 int // second operand for meas_ZZ
	// Reg is the classical register index for meas_*/read.
	Reg int
}

// Qubits returns the operand qubits.
func (in Instruction) Qubits() []int {
	switch in.Op.NumQubits() {
	case 0:
		return nil
	case 1:
		return []int{in.Q1}
	default:
		return []int{in.Q1, in.Q2}
	}
}

// Commutes reports whether two instructions act on disjoint qubit sets, the
// commutation rule the queue uses for out-of-order commit. (Physically,
// commuting logical operations are exactly those touching disjoint patches
// under this instruction set, plus reads, which touch no patch.)
func Commutes(a, b Instruction) bool {
	for _, qa := range a.Qubits() {
		for _, qb := range b.Qubits() {
			if qa == qb {
				return false
			}
		}
	}
	return true
}

// Mode selects the architecture variant for the throughput comparison of
// Fig. 10.
type Mode int

const (
	// ModeMBBEFree: no cosmic rays; latency d.
	ModeMBBEFree Mode = iota
	// ModeBaseline: MBBEs are tolerated by doubling the default code
	// distance, so every instruction runs at latency 2d and rays need no
	// reaction.
	ModeBaseline
	// ModeQ3DE: default distance d; MBBEs are detected, affected patches
	// expand (2x2 blocks, latency 2d while expanded) and anomalous vacant
	// blocks are avoided by the router.
	ModeQ3DE
)

func (m Mode) String() string {
	switch m {
	case ModeMBBEFree:
		return "mbbe-free"
	case ModeBaseline:
		return "baseline"
	case ModeQ3DE:
		return "q3de"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}
