// Package viz renders terminal diagrams of the simulator state: qubit-plane
// block maps (Fig. 10's layout), anomaly-detector counter heatmaps, and
// anomalous-region overlays. The examples use it to make the architecture's
// behaviour visible without plotting tools.
package viz

import (
	"strings"

	"q3de/internal/deform"
	"q3de/internal/lattice"
)

// PlaneString renders the block states of a qubit plane, one character per
// block: 'Q' logical qubit, '+' expansion, '*' routing, 'x' anomalous,
// '.' vacant.
func PlaneString(p *deform.Plane) string {
	var b strings.Builder
	for r := 0; r < p.Rows; r++ {
		for c := 0; c < p.Cols; c++ {
			switch p.State(r, c) {
			case deform.BlockLogical:
				b.WriteByte('Q')
			case deform.BlockExpansion:
				b.WriteByte('+')
			case deform.BlockRouting:
				b.WriteByte('*')
			case deform.BlockAnomalous:
				b.WriteByte('x')
			default:
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Heatmap renders per-position counts laid out row-major over cols columns
// using a density ramp, marking positions above the threshold with '#'.
func Heatmap(counts []int, cols int, threshold float64) string {
	if cols <= 0 {
		panic("viz: cols must be positive")
	}
	ramp := []byte(" .:-=+*%")
	maxC := 1
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range counts {
		if float64(c) > threshold {
			b.WriteByte('#')
		} else {
			idx := c * (len(ramp) - 1) / maxC
			b.WriteByte(ramp[idx])
		}
		if (i+1)%cols == 0 {
			b.WriteByte('\n')
		}
	}
	if len(counts)%cols != 0 {
		b.WriteByte('\n')
	}
	return b.String()
}

// BoxOverlay renders the spatial footprint of an anomalous region on the
// d x (d-1) syndrome-node grid: '#' inside, '.' outside.
func BoxOverlay(d int, box lattice.Box) string {
	var b strings.Builder
	for r := 0; r < d; r++ {
		for c := 0; c < d-1; c++ {
			if r >= box.R0 && r <= box.R1 && c >= box.C0 && c <= box.C1 {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SideBySide joins two multi-line blocks horizontally with a gutter, for
// before/after comparisons in example output.
func SideBySide(left, right, gutter string) string {
	ls := strings.Split(strings.TrimRight(left, "\n"), "\n")
	rs := strings.Split(strings.TrimRight(right, "\n"), "\n")
	width := 0
	for _, l := range ls {
		if len(l) > width {
			width = len(l)
		}
	}
	n := len(ls)
	if len(rs) > n {
		n = len(rs)
	}
	var b strings.Builder
	for i := 0; i < n; i++ {
		var l, r string
		if i < len(ls) {
			l = ls[i]
		}
		if i < len(rs) {
			r = rs[i]
		}
		b.WriteString(l)
		b.WriteString(strings.Repeat(" ", width-len(l)))
		b.WriteString(gutter)
		b.WriteString(r)
		b.WriteByte('\n')
	}
	return b.String()
}
