package viz

import (
	"strings"
	"testing"

	"q3de/internal/deform"
	"q3de/internal/lattice"
)

func TestPlaneString(t *testing.T) {
	p := deform.NewPlane(3, 3)
	p.Set(1, 1, deform.BlockLogical, 0)
	p.Set(0, 0, deform.BlockAnomalous, -1)
	p.Set(2, 2, deform.BlockRouting, 1)
	p.Set(1, 2, deform.BlockExpansion, 0)
	got := PlaneString(p)
	want := "x..\n.Q+\n..*\n"
	if got != want {
		t.Errorf("PlaneString:\n%q\nwant\n%q", got, want)
	}
}

func TestHeatmap(t *testing.T) {
	counts := []int{0, 1, 2, 8, 0, 0}
	got := Heatmap(counts, 3, 5)
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	if !strings.Contains(got, "#") {
		t.Error("count above threshold should render '#'")
	}
	if got[0] != ' ' {
		t.Error("zero count should render blank")
	}
	// Ragged layouts still terminate with a newline.
	if r := Heatmap([]int{1, 2, 3, 4}, 3, 10); !strings.HasSuffix(r, "\n") {
		t.Error("ragged heatmap must end with newline")
	}
}

func TestHeatmapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for cols <= 0")
		}
	}()
	Heatmap([]int{1}, 0, 1)
}

func TestBoxOverlay(t *testing.T) {
	box := lattice.Box{R0: 1, R1: 2, C0: 0, C1: 1}
	got := BoxOverlay(4, box)
	want := "...\n##.\n##.\n...\n"
	if got != want {
		t.Errorf("BoxOverlay:\n%q\nwant\n%q", got, want)
	}
}

func TestSideBySide(t *testing.T) {
	got := SideBySide("ab\nc\n", "XY\nZW\nV\n", " | ")
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(lines))
	}
	if lines[0] != "ab | XY" || lines[1] != "c  | ZW" || lines[2] != "   | V" {
		t.Errorf("SideBySide:\n%s", got)
	}
}
