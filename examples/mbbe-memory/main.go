// mbbe-memory reproduces a slice of the paper's Fig. 3 and Fig. 8 story on
// one terminal screen: logical error rates across physical error rates for
// several code distances, with the MBBE on or off and the decoder blind or
// anomaly-aware.
//
//	go run ./examples/mbbe-memory
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"q3de/internal/core"
)

func main() {
	distances := []int{7, 9, 11}
	rates := []float64{4e-3, 1e-2, 2e-2}
	const (
		dano = 4
		pano = 0.5
	)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "d\tp\tpL clean\tpL MBBE (blind)\tpL MBBE (rollback)\tblind/rollback")
	for _, d := range distances {
		box := core.CenteredMBBE(d, d, dano, 0)
		for _, p := range rates {
			run := func(b *core.Box, aware bool) float64 {
				return core.Run(core.MemoryExperiment{
					D: d, P: p, Box: b, Pano: pano, Aware: aware,
					Decoder: core.DecoderGreedy, MaxShots: 8000, MaxFailures: 400,
					Seed: 42,
				}).PL
			}
			clean := run(nil, false)
			blind := run(&box, false)
			aware := run(&box, true)
			gain := 0.0
			if aware > 0 {
				gain = blind / aware
			}
			fmt.Fprintf(tw, "%d\t%.0e\t%.2e\t%.2e\t%.2e\t%.1fx\n", d, p, clean, blind, aware, gain)
		}
	}
	tw.Flush()
	fmt.Println("\nThe MBBE (dano=4, pano=0.5) wipes out most of the distance gain;")
	fmt.Println("anomaly-aware re-decoding (the Q3DE rollback) recovers roughly half of")
	fmt.Println("the lost effective distance, most visibly at low physical error rates.")
}
