// throughput runs the Fig.-10-style instruction scheduling experiment: 25
// logical qubits on an 11x11 block plane executing random meas_ZZ (lattice
// surgery) instructions, comparing the MBBE-free, baseline
// (doubled-default-distance) and Q3DE architectures under cosmic rays.
//
//	go run ./examples/throughput
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"q3de/internal/deform"
	"q3de/internal/isa"
	"q3de/internal/stats"
)

func main() {
	const (
		d            = 11
		instructions = 2000
		strikeEvery  = 800 // cycles between strikes in the stressed scenario
		strikeLast   = 1500
	)

	run := func(mode isa.Mode, strikes bool) (float64, int) {
		plane := deform.NewPlane(11, 11)
		ids, pos := plane.PlaceLogicalGrid()
		s := isa.NewScheduler(mode, d, plane, ids, pos)
		rng := stats.NewRNG(3, 5)
		for i := 0; i < instructions; i++ {
			a := rng.IntN(len(ids))
			b := rng.IntN(len(ids) - 1)
			if b >= a {
				b++
			}
			s.Enqueue(isa.Instruction{ID: i, Op: isa.MeasZZ, Q1: ids[a], Q2: ids[b]})
		}
		cycles := 0
		for s.Completed() < instructions && cycles < 100*instructions {
			if strikes && cycles%strikeEvery == 0 {
				s.StrikeBlock(rng.IntN(11), rng.IntN(11), cycles+strikeLast)
			}
			s.Step()
			cycles++
		}
		return float64(s.Completed()) * d / float64(cycles), cycles
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "architecture\tstrikes\tinstructions/d-cycles\ttotal cycles")
	for _, row := range []struct {
		name    string
		mode    isa.Mode
		strikes bool
	}{
		{"MBBE-free", isa.ModeMBBEFree, false},
		{"baseline (2d default)", isa.ModeBaseline, false},
		{"Q3DE (quiet sky)", isa.ModeQ3DE, false},
		{"Q3DE (stormy sky)", isa.ModeQ3DE, true},
	} {
		tput, cycles := run(row.mode, row.strikes)
		fmt.Fprintf(tw, "%s\t%v\t%.2f\t%d\n", row.name, row.strikes, tput, cycles)
	}
	tw.Flush()

	fmt.Println("\nThe baseline pays the doubled code distance on every instruction;")
	fmt.Println("Q3DE pays only while rays are actually striking, so at realistic ray")
	fmt.Println("rates its throughput approaches the MBBE-free architecture (Fig. 10).")
}
