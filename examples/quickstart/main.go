// Quickstart: estimate the logical error rate of a distance-9 surface code
// with and without a cosmic-ray MBBE, using the core facade.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"q3de/internal/core"
)

func main() {
	fmt.Println("Q3DE quickstart: d=9 surface-code memory, greedy decoder")

	// Clean memory: d cycles of idling at p = 5e-3.
	clean := core.Run(core.MemoryExperiment{
		D: 9, P: 5e-3,
		Decoder:  core.DecoderGreedy,
		MaxShots: 20000, Seed: 1,
	})
	fmt.Printf("  MBBE-free:        pL = %.3g per cycle (%d/%d failures)\n",
		clean.PL, clean.Failures, clean.Shots)

	// The same memory with a cosmic-ray strike: a 4x4 anomalous region at
	// error rate 0.5 (the paper's Fig. 3 setting).
	box := core.CenteredMBBE(9, 9, 4, 0)
	dirty := core.Run(core.MemoryExperiment{
		D: 9, P: 5e-3, Box: &box, Pano: 0.5,
		Decoder:  core.DecoderGreedy,
		MaxShots: 20000, Seed: 1,
	})
	fmt.Printf("  with MBBE:        pL = %.3g per cycle (%d/%d failures)\n",
		dirty.PL, dirty.Failures, dirty.Shots)

	// Q3DE's re-executed decoding: same MBBE, but the decoder knows the
	// region and uses anomaly-weighted matching.
	aware := core.Run(core.MemoryExperiment{
		D: 9, P: 5e-3, Box: &box, Pano: 0.5, Aware: true,
		Decoder:  core.DecoderGreedy,
		MaxShots: 20000, Seed: 1,
	})
	fmt.Printf("  with MBBE+Q3DE:   pL = %.3g per cycle (%d/%d failures)\n",
		aware.PL, aware.Failures, aware.Shots)

	if clean.PL > 0 {
		fmt.Printf("\n  MBBE inflates the logical rate %.0fx; Q3DE-aware decoding recovers %.1fx of it.\n",
			dirty.PL/clean.PL, dirty.PL/aware.PL)
	}
}
