// pipeline demonstrates the full Q3DE control unit end to end on a single
// logical qubit: syndrome layers stream through the syndrome queue, the
// anomaly detection unit spots an injected cosmic-ray strike, the controller
// rolls the decoder back to the estimated onset, re-decodes with
// anomaly-weighted matching, and issues op_expand to the stabilizer map,
// which walks the three-step code deformation of Fig. 5.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"

	"q3de/internal/core"
	"q3de/internal/deform"
	"q3de/internal/noise"
	"q3de/internal/stats"
)

func main() {
	cfg := core.QubitConfig{
		D: 11, P: 3e-3, Pano: 0.4,
		Cwin: 30, Alpha: 0.01, Nth: 12, Dano: 4,
		Horizon: 160, React: true, Seed: 99,
	}
	const onset = 90

	q := core.NewLogicalQubit(cfg)
	l := q.Lattice()
	box := l.CenteredBox(4)
	box.T0 = onset
	model := noise.NewModel(l, cfg.P, &box, 0.4)

	var s noise.Sample
	model.Draw(stats.NewRNG(123, 456), &s)

	fmt.Printf("streaming %d cycles of a d=%d logical qubit (MBBE strikes at cycle %d)\n",
		cfg.Horizon, cfg.D, onset)

	// Stream layer by layer, reporting the architecture's state changes.
	cols := l.D - 1
	perLayer := make([][]int32, l.Rounds)
	for _, id := range s.Defects {
		co := l.NodeCoord(id)
		perLayer[co.T] = append(perLayer[co.T], int32(co.R*cols+co.C))
	}
	lastPhase := deform.PhaseNormal
	reported := false
	for t := 0; t < l.Rounds; t++ {
		q.PushCycle(perLayer[t])
		if det, ok := q.Detected(); ok && !reported {
			reported = true
			b := q.Controller.Box()
			fmt.Printf("  cycle %3d: MBBE detected (latency %d); estimated region rows %d-%d cols %d-%d, onset ~%d\n",
				det, det-onset, b.R0, b.R1, b.C0, b.C1, q.Controller.OnsetAt)
			fmt.Printf("             decoder rolled back %d layers, matching queue rewound\n",
				q.Controller.RollbackDepth)
		}
		if ph := q.Patch.Phase; ph != lastPhase {
			fmt.Printf("  cycle %3d: stabilizer map %v -> %v (distance now %d)\n",
				t, lastPhase, ph, q.CurrentDistance())
			lastPhase = ph
		}
	}
	ok := q.Finish() == s.CutParity
	fmt.Printf("\nshot decoded %s; correction parity %v, error parity %v\n",
		map[bool]string{true: "CORRECTLY", false: "WRONG"}[ok],
		!s.CutParity == !ok, s.CutParity)
	if _, detected := q.Detected(); !detected {
		fmt.Println("(no detection this run — rerun with another seed)")
	}
}
