// burst-sources surveys the MBBE mechanisms of paper Sec. IX beyond
// superconducting cosmic rays — atom loss, Coulomb-crystal scrambling,
// leakage, calibration drift — and measures how each degrades a d=9 logical
// memory and what Q3DE's appropriate reaction is.
//
//	go run ./examples/burst-sources
package main

import (
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"q3de/internal/burst"
	"q3de/internal/lattice"
	"q3de/internal/sim"
)

func main() {
	const (
		d = 9
		p = 2e-3
	)
	l := lattice.New(d, d)

	clean := sim.RunMemory(sim.MemoryConfig{
		D: d, P: p, Decoder: sim.DecoderGreedy, MaxShots: 8000, Seed: 31,
	})
	fmt.Printf("d=%d memory at p=%g: clean pL = %.3g per cycle\n\n", d, p, clean.PL)

	profiles := burst.Profiles()
	sources := make([]burst.Source, 0, len(profiles))
	for s := range profiles {
		sources = append(sources, s)
	}
	sort.Slice(sources, func(i, j int) bool { return sources[i] < sources[j] })

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "source\tregion\tpano\tduty cycle\tpL during burst\tx clean\treaction")
	for _, src := range sources {
		prof := profiles[src]
		// Centre the region so the comparison is placement-fair (a random
		// placement next to a rough boundary would dominate the row: a
		// saturated qubit one hop from the boundary forges logical chains
		// almost for free — try prof.Region for the placement-averaged view).
		size := prof.Size
		if size <= 0 {
			size = d
		}
		box := l.CenteredBox(size)
		box.T1 = l.Rounds - 1 // burst spans the whole short memory window
		r := sim.RunMemory(sim.MemoryConfig{
			D: d, P: p, Box: &box, Pano: prof.Pano(p),
			Decoder: sim.DecoderGreedy, MaxShots: 8000, Seed: 31,
		})
		region := fmt.Sprintf("%dx%d", box.R1-box.R0+1, box.C1-box.C0+1)
		factor := "-"
		if clean.PL > 0 {
			factor = fmt.Sprintf("%.0fx", r.PL/clean.PL)
		}
		fmt.Fprintf(tw, "%v\t%s\t%.3g\t%.1e\t%.3g\t%s\t%v\n",
			src, region, prof.Pano(p), prof.DutyCycle(), r.PL, factor, prof.Reaction)
	}
	tw.Flush()

	fmt.Println("\nEven a single saturated site hurts while it persists (its error")
	fmt.Println("mechanisms span three columns of the matching graph), which is why the")
	fmt.Println("paper treats loss and leakage as burst errors too. What differs is the")
	fmt.Println("reaction: expansion suffices for self-recovering regions (cosmic rays),")
	fmt.Println("while atomic mechanisms need relocation so the hardware can be serviced")
	fmt.Println("(reload / re-cool / re-calibrate). The duty-cycle column shows which")
	fmt.Println("sources dominate the time-averaged logical rate via Eq. (1).")
}
