// detection walks through the in-situ anomaly detection unit (paper Sec. IV)
// on a real syndrome stream: calibrate the activity moments, stream cycles,
// inject a cosmic-ray strike, and watch the detector locate it.
//
//	go run ./examples/detection
package main

import (
	"fmt"

	"q3de/internal/anomaly"
	"q3de/internal/lattice"
	"q3de/internal/noise"
	"q3de/internal/stats"
	"q3de/internal/viz"
)

func main() {
	const (
		d      = 15
		p      = 1e-3
		pano   = 0.1 // 100x inflation, the Sycamore observation
		onset  = 400
		rounds = 1200
		cwin   = 120
	)

	// Calibration phase: measure mu and sigma on clean noise (the paper
	// assumes these are known from pre-calibration).
	calLat := lattice.New(d, 60)
	clean := noise.NewModel(calLat, p, nil, 0)
	mu, sigma := clean.NodeActivityMoments(stats.NewRNG(7, 7), 200)
	fmt.Printf("calibration: mu=%.4f sigma=%.4f per node per cycle\n", mu, sigma)

	// Build the stream with a strike at cycle 400.
	l := lattice.New(d, rounds)
	box := l.CenteredBox(4)
	box.T0 = onset
	model := noise.NewModel(l, p, &box, pano)
	var s noise.Sample
	model.Draw(stats.NewRNG(11, 13), &s)

	det := anomaly.New(anomaly.Config{
		Positions: l.NodesPerLayer(),
		Window:    cwin,
		Mu:        mu, Sigma: sigma,
		Alpha: 0.001, Nth: 20,
	})
	fmt.Printf("detector: Vth=%.2f over window %d, vote threshold %d\n", det.Vth(), cwin, 20)

	cols := d - 1
	perLayer := make([][]int32, rounds)
	for _, id := range s.Defects {
		co := l.NodeCoord(id)
		perLayer[co.T] = append(perLayer[co.T], int32(co.R*cols+co.C))
	}

	for t := 0; t < rounds; t++ {
		if dd := det.Push(perLayer[t]); dd != nil {
			r, c := anomaly.MedianPosition(dd.Flagged, cols)
			trueR, trueC := box.Center()
			fmt.Printf("\nMBBE detected at cycle %d (true onset %d, latency %d cycles)\n",
				dd.Cycle, onset, dd.Cycle-onset)
			fmt.Printf("  flagged counters: %d\n", len(dd.Flagged))
			fmt.Printf("  estimated centre: (%d,%d), true centre (%d,%d)\n", r, c, trueR, trueC)
			fmt.Printf("  onset estimate:   cycle %d (window-start bound)\n", dd.OnsetEstimate)

			// Render the counter heatmap against the true strike region.
			counts := make([]int, l.NodesPerLayer())
			for i := range counts {
				counts[i] = det.Count(i)
			}
			fmt.Printf("\ncounter heatmap ('#' above Vth)   true region\n")
			fmt.Print(viz.SideBySide(
				viz.Heatmap(counts, cols, det.Vth()),
				viz.BoxOverlay(d, box), "   "))
			return
		}
	}
	fmt.Println("no detection — try a longer window or hotter anomaly")
}
