package q3de

// Decoder micro-benchmark suite: the decoding hot path dominates every
// Monte-Carlo data point (one Decode per shot, ≥100k shots per
// configuration), so these benchmarks pin its throughput and its
// steady-state allocation behaviour at the paper's operating points.
// The case matrix — 5 decoder families × d ∈ {5, 9, 13} × {clean, mbbe} —
// is defined once in internal/benchmatrix and shared with
// `go run ./cmd/q3de-bench`, which records the same cells to
// BENCH_decoders.json for the perf trajectory (see README.md).

import (
	"testing"
	"time"

	"q3de/internal/benchmatrix"
)

func benchDecoder(b *testing.B, fam benchmatrix.Family) {
	for _, c := range benchmatrix.Cases() {
		b.Run(c.Name(), func(b *testing.B) {
			l, m, samples := c.Setup(64)
			dec := fam.New(l, m)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dec.Decode(samples[i%len(samples)])
			}
		})
	}
}

func benchFamily(b *testing.B, name string) {
	b.Helper()
	for _, fam := range benchmatrix.Families() {
		if fam.Name == name {
			benchDecoder(b, fam)
			return
		}
	}
	b.Fatalf("unknown decoder family %q", name)
}

// BenchmarkDecodeMWPM measures the exact sparse (component-decomposed)
// blossom decoder across the matrix.
func BenchmarkDecodeMWPM(b *testing.B) { benchFamily(b, "mwpm") }

// BenchmarkDecodeMWPMDense measures the dense all-pairs reference
// construction the sparse pipeline replaced (weight-equivalent; kept for the
// perf trajectory's speedup baseline).
func BenchmarkDecodeMWPMDense(b *testing.B) { benchFamily(b, "mwpm-dense") }

// BenchmarkDecodeGreedy measures the hardware-model greedy decoder.
func BenchmarkDecodeGreedy(b *testing.B) { benchFamily(b, "greedy") }

// BenchmarkDecodeUnionFind measures the union-find decoder.
func BenchmarkDecodeUnionFind(b *testing.B) { benchFamily(b, "union-find") }

// BenchmarkDecodeTiered measures the predecode escalation router: exact
// sparse MWPM with zero-clique compression behind tier routing (weight-equal
// to the mwpm row; the delta is pure performance).
func BenchmarkDecodeTiered(b *testing.B) { benchFamily(b, "tiered") }

// TestMWPMDecodeWallClock is the CI guard for the sparse pipeline's headline
// win: 64 pre-drawn d=13 MBBE shots decode in ~50 ms sparse but ~4.4 s
// through the dense construction (64 × ~68 ms/shot). The ceiling is generous
// — ~40× the expected sparse cost, so a loaded CI runner cannot trip it —
// but an accidental reintroduction of a dense-shaped path blows straight
// through it.
func TestMWPMDecodeWallClock(t *testing.T) {
	if testing.Short() {
		// The -short CI lanes include the race build, where the instrumented
		// slowdown (~10×) would need a ceiling loose enough to be useless;
		// the dedicated un-instrumented CI step runs this test instead.
		t.Skip("wall-clock ceiling runs in its own un-instrumented CI step")
	}
	decodeWallClock(t, "mwpm", 2*time.Second,
		"dense-shaped path reintroduced?")
}

// TestTieredDecodeWallClock pins the tiered router's headline win on the same
// 64 d=13 MBBE shots: the zero-clique contraction decodes them in ~20 ms
// (~0.3 ms/shot — ~9× the uncompressed sparse row), so the 500 ms ceiling is
// ~25× slack for loaded runners while still catching a contraction
// regression back toward the 170 ms+ plain-blossom cost.
func TestTieredDecodeWallClock(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock ceiling runs in its own un-instrumented CI step")
	}
	decodeWallClock(t, "tiered", 500*time.Millisecond,
		"zero-clique contraction regressed?")
}

func decodeWallClock(t *testing.T, family string, ceiling time.Duration, hint string) {
	t.Helper()
	c := benchmatrix.Case{D: 13, MBBE: true}
	l, m, samples := c.Setup(64)
	for _, fam := range benchmatrix.Families() {
		if fam.Name != family {
			continue
		}
		dec := fam.New(l, m)
		start := time.Now()
		for _, s := range samples {
			dec.Decode(s)
		}
		if elapsed := time.Since(start); elapsed > ceiling {
			t.Errorf("%s decoded %d d=13 MBBE shots in %v, ceiling %v — %s",
				family, len(samples), elapsed, ceiling, hint)
		}
	}
}
