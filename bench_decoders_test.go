package q3de

// Decoder micro-benchmark suite: the decoding hot path dominates every
// Monte-Carlo data point (one Decode per shot, ≥100k shots per
// configuration), so these benchmarks pin its throughput and its
// steady-state allocation behaviour at the paper's operating points.
// The case matrix — 3 decoder families × d ∈ {5, 9, 13} × {clean, mbbe} —
// is defined once in internal/benchmatrix and shared with
// `go run ./cmd/q3de-bench`, which records the same cells to
// BENCH_decoders.json for the perf trajectory (see README.md).

import (
	"testing"

	"q3de/internal/benchmatrix"
)

func benchDecoder(b *testing.B, fam benchmatrix.Family) {
	for _, c := range benchmatrix.Cases() {
		b.Run(c.Name(), func(b *testing.B) {
			l, m, samples := c.Setup(64)
			dec := fam.New(l, m)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dec.Decode(samples[i%len(samples)])
			}
		})
	}
}

func benchFamily(b *testing.B, name string) {
	b.Helper()
	for _, fam := range benchmatrix.Families() {
		if fam.Name == name {
			benchDecoder(b, fam)
			return
		}
	}
	b.Fatalf("unknown decoder family %q", name)
}

// BenchmarkDecodeMWPM measures the exact blossom decoder across the matrix.
func BenchmarkDecodeMWPM(b *testing.B) { benchFamily(b, "mwpm") }

// BenchmarkDecodeGreedy measures the hardware-model greedy decoder.
func BenchmarkDecodeGreedy(b *testing.B) { benchFamily(b, "greedy") }

// BenchmarkDecodeUnionFind measures the union-find decoder.
func BenchmarkDecodeUnionFind(b *testing.B) { benchFamily(b, "union-find") }
