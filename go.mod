module q3de

go 1.24
