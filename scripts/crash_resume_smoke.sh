#!/usr/bin/env bash
# Crash-resume smoke: kill q3de-serve mid-sweep with SIGKILL and verify the
# journal brings the job back.
#
#   1. Run a reference sweep on a journal-free server: the golden result.
#   2. Start a journaled server, submit the same sweep, SIGKILL the process
#      after the first grid points complete (no drain, no flush beyond the
#      journal's own appends — the kernel keeps written page-cache data).
#   3. Restart on the same journal directory and assert:
#        - the interrupted job resumes under its original ID
#          (q3de_jobs_resumed_total >= 1) and runs to done with the
#          resumed flag set,
#        - finished points were restored into the point cache
#          (q3de_sweep_point_cache_hits_total > 0),
#        - the final result is bit-identical to the reference once the
#          cache-execution metadata (cached / cache_hits) is normalized out.
#
# Needs: go, curl, jq. Exits non-zero on any failed assertion.
set -euo pipefail

cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

REF_ADDR=127.0.0.1:18321
CRASH_ADDR=127.0.0.1:18322
JOURNAL="$WORK/journal"

# A 9-point memory sweep sized to run a few seconds on one worker: long
# enough that the SIGKILL lands mid-run, cheap enough for CI.
SPEC='{"kind":"sweep","sweep":{
  "scenario":"memory",
  "base":{"p":0.01,"max_shots":60000,"seed":7},
  "axes":[{"name":"d","values":[3,5,7]},{"name":"p","values":[0.01,0.02,0.03]}]
}}'

echo "== build"
go build -o "$WORK/q3de-serve" ./cmd/q3de-serve

wait_ready() { # addr
  for _ in $(seq 1 100); do
    curl -fsS "http://$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "server on $1 never became ready" >&2
  return 1
}

submit() { # addr -> job id
  curl -fsS -X POST "http://$1/v1/jobs" -d "$SPEC" | jq -r .id
}

wait_done() { # addr id
  for _ in $(seq 1 600); do
    state=$(curl -fsS "http://$1/v1/jobs/$2" | jq -r .state)
    case "$state" in
      done) return 0 ;;
      failed|cancelled|interrupted) echo "job $2 ended $state" >&2; return 1 ;;
    esac
    sleep 0.2
  done
  echo "job $2 never finished" >&2
  return 1
}

# normalize strips execution metadata that legitimately differs between a
# live and a resumed run: restored points are served from the point cache.
normalize() { # addr id -> normalized result JSON on stdout
  curl -fsS "http://$1/v1/jobs/$2/result" |
    jq -S '.result | .cache_hits = 0 | .points = [.points[] | .cached = false]'
}

metric() { # addr name -> value (0 if absent)
  curl -fsS "http://$1/metrics" | awk -v m="$2" '$1 == m {print $2; f=1} END {if (!f) print 0}'
}

echo "== reference run (no journal)"
"$WORK/q3de-serve" -addr "$REF_ADDR" &
SERVER_PID=$!
wait_ready "$REF_ADDR"
REF_ID=$(submit "$REF_ADDR")
wait_done "$REF_ADDR" "$REF_ID"
normalize "$REF_ADDR" "$REF_ID" > "$WORK/ref.json"
kill "$SERVER_PID" 2>/dev/null && wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

echo "== first life: journaled server, SIGKILL mid-sweep"
"$WORK/q3de-serve" -addr "$CRASH_ADDR" -workers 1 -journal "$JOURNAL" &
SERVER_PID=$!
wait_ready "$CRASH_ADDR"
JOB_ID=$(submit "$CRASH_ADDR")

for _ in $(seq 1 300); do
  points_done=$(curl -fsS "http://$CRASH_ADDR/v1/jobs/$JOB_ID" | jq '.progress.points_done // 0')
  [ "$points_done" -ge 1 ] && break
  sleep 0.1
done
if [ "$points_done" -lt 1 ]; then
  echo "FAIL: no sweep point finished before the kill window" >&2
  exit 1
fi
state=$(curl -fsS "http://$CRASH_ADDR/v1/jobs/$JOB_ID" | jq -r .state)
if [ "$state" != running ]; then
  echo "FAIL: job already $state before SIGKILL — grow the sweep" >&2
  exit 1
fi
echo "   killing with $points_done point(s) done"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

echo "== second life: restart on the same journal"
"$WORK/q3de-serve" -addr "$CRASH_ADDR" -workers 1 -journal "$JOURNAL" &
SERVER_PID=$!
wait_ready "$CRASH_ADDR"

resumed=$(metric "$CRASH_ADDR" q3de_jobs_resumed_total)
if [ "${resumed%.*}" -lt 1 ]; then
  echo "FAIL: q3de_jobs_resumed_total = $resumed, want >= 1" >&2
  exit 1
fi
wait_done "$CRASH_ADDR" "$JOB_ID"

resumed_flag=$(curl -fsS "http://$CRASH_ADDR/v1/jobs/$JOB_ID" | jq .resumed)
if [ "$resumed_flag" != true ]; then
  echo "FAIL: job $JOB_ID does not carry resumed=true" >&2
  exit 1
fi
cache_hits=$(metric "$CRASH_ADDR" q3de_sweep_point_cache_hits_total)
if [ "${cache_hits%.*}" -lt 1 ]; then
  echo "FAIL: q3de_sweep_point_cache_hits_total = $cache_hits; restored points were not served from the cache" >&2
  exit 1
fi
normalize "$CRASH_ADDR" "$JOB_ID" > "$WORK/resumed.json"
kill "$SERVER_PID" 2>/dev/null && wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

if ! diff -u "$WORK/ref.json" "$WORK/resumed.json"; then
  echo "FAIL: resumed result differs from the uninterrupted reference" >&2
  exit 1
fi

echo "PASS: job $JOB_ID resumed after SIGKILL ($points_done/9 points pre-crash," \
     "$cache_hits cache hits) and finished bit-identical to the reference"
